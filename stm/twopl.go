package stm

func init() {
	registerEngine(EngineTwoPL, "twopl",
		"encounter-time per-variable try-locking, restart on lock failure (consistent, DAP, blocking)",
		func() engine { return twoPLEngine{} })
}

// twoPLEngine is encounter-time two-phase locking: every access try-locks
// the variable's mutex, writes go in place with an undo log, and a failed
// try-lock restarts the whole transaction (deadlock avoidance by abort).
// Only the accessed variables' locks are ever touched, so the engine is
// disjoint-access-parallel — the corner it gives up is liveness: a
// preempted lock holder stalls every conflicting transaction.
type twoPLEngine struct{}

// twoPLTx is one 2PL attempt: the held locks in acquisition order and the
// undo log of in-place writes.
type twoPLTx struct {
	locked map[*tvar]bool
	lorder []*tvar
	undo   undoLog
}

func (twoPLEngine) begin(attempt int) txState {
	backoff(attempt)
	return &twoPLTx{locked: make(map[*tvar]bool)}
}

// acquire try-locks the variable at first access; failure restarts the
// whole transaction.
func (tx *twoPLTx) acquire(tv *tvar) {
	if tx.locked[tv] {
		return
	}
	if !tv.mu.TryLock() {
		panic(conflict{})
	}
	tx.locked[tv] = true
	tx.lorder = append(tx.lorder, tv)
}

func (tx *twoPLTx) load(tv *tvar) any {
	tx.acquire(tv)
	return *tv.val.Load()
}

func (tx *twoPLTx) store(tv *tvar, v any) {
	tx.acquire(tv)
	tx.undo.push(tv)
	nv := v
	tv.val.Store(&nv)
}

// commit releases the locks; the in-place writes are already visible.
// The undo log is kept so wrote() can answer after commit.
func (tx *twoPLTx) commit() bool {
	tx.releaseLocks()
	return true
}

func (tx *twoPLTx) abortCleanup() {
	tx.undo.rollback()
	tx.releaseLocks()
}

func (tx *twoPLTx) conflictCleanup() {
	tx.undo.rollback()
	tx.releaseLocks()
}

func (tx *twoPLTx) releaseLocks() {
	for i := len(tx.lorder) - 1; i >= 0; i-- {
		tx.lorder[i].mu.Unlock()
	}
	tx.lorder = tx.lorder[:0]
	for tv := range tx.locked {
		delete(tx.locked, tv)
	}
}

func (tx *twoPLTx) wrote() bool { return len(tx.undo) > 0 }

func (tx *twoPLTx) mark() txMark { return len(tx.undo) }

func (tx *twoPLTx) rollbackTo(m txMark) { tx.undo.rollbackTo(m.(int)) }
