package stm

import (
	"sync"
	"sync/atomic"
)

func init() {
	registerEngine(EngineTwoPL, "twopl",
		"encounter-time try-locking on a sharded orec table, restart on lock failure (consistent, DAP, blocking)",
		func() engine { return newTwoPLEngine() })
}

// twoPLEngine is encounter-time two-phase locking: every access try-locks
// the ownership record covering the variable, writes go in place with an
// undo log, and a failed try-lock restarts the whole transaction
// (deadlock avoidance by abort). Locks live in a sharded orec table
// (orec.go) rather than on the variables, so per-variable memory stays
// flat and the shard count is a striping knob; only the accessed
// variables' records are ever touched, so the engine remains
// disjoint-access-parallel up to hash aliasing. The corner it gives up
// is liveness: a preempted lock holder stalls every conflicting
// transaction.
type twoPLEngine struct {
	orecs     *orecTable
	spill     int
	pool      sync.Pool
	lockFails atomic.Uint64
}

func newTwoPLEngine() *twoPLEngine {
	return &twoPLEngine{orecs: newOrecTable(OrecShards), spill: spillThreshold()}
}

func (e *twoPLEngine) lockFailCount() uint64 { return e.lockFails.Load() }

// twoPLTx is one 2PL attempt: the held ownership records (small-set
// lockSet, acquisition order) and the undo log of in-place writes.
type twoPLTx struct {
	eng    *twoPLEngine
	locked lockSet
	undo   undoLog
}

func (e *twoPLEngine) begin(attempt int) txState {
	backoff(attempt)
	tx, _ := e.pool.Get().(*twoPLTx)
	if tx == nil {
		tx = &twoPLTx{eng: e}
		tx.locked.init(e.spill)
	}
	return tx
}

func (e *twoPLEngine) done(st txState) {
	st.reset()
	e.pool.Put(st)
}

// reset truncates the lock set and undo log for reuse. The locks
// themselves were released on every terminal path before done runs.
func (tx *twoPLTx) reset() {
	tx.locked.reset()
	tx.undo.reset()
}

// acquire try-locks the variable's ownership record at first access;
// failure restarts the whole transaction. Two variables covered by the
// same record share one acquisition.
func (tx *twoPLTx) acquire(tv *tvar) {
	o := tx.eng.orecs.of(tv)
	if tx.locked.contains(o) {
		return
	}
	if !o.mu.TryLock() {
		tx.eng.lockFails.Add(1)
		panic(conflict{})
	}
	tx.locked.add(o)
}

func (tx *twoPLTx) load(tv *tvar) vword {
	tx.acquire(tv)
	return tv.read()
}

func (tx *twoPLTx) store(tv *tvar, v vword) {
	tx.acquire(tv)
	tx.undo.push(tv)
	tv.publish(v)
}

// commit releases the locks; the in-place writes are already visible.
// The undo log is kept so wrote() can answer after commit.
func (tx *twoPLTx) commit() bool {
	tx.releaseLocks()
	return true
}

func (tx *twoPLTx) abortCleanup() {
	tx.undo.rollback()
	tx.releaseLocks()
}

func (tx *twoPLTx) conflictCleanup() {
	tx.undo.rollback()
	tx.releaseLocks()
}

func (tx *twoPLTx) releaseLocks() {
	held := tx.locked.held
	for i := len(held) - 1; i >= 0; i-- {
		held[i].mu.Unlock()
	}
	tx.locked.reset()
}

func (tx *twoPLTx) wrote() bool { return len(tx.undo) > 0 }

func (tx *twoPLTx) mark() txMark { return txMark{n: len(tx.undo)} }

func (tx *twoPLTx) rollbackTo(m txMark) { tx.undo.rollbackTo(m.n) }
