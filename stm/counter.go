package stm

import (
	"runtime"
	"sync/atomic"
	"unsafe"
)

// Striped statistics counters: the same cache-line padding discipline as
// the striped version clock (clock.go) and the orec table (orec.go),
// applied to the bookkeeping the hot path touches on every attempt — the
// engine-level commit/abort/retry counters and the adaptive engine's
// window accounting. A fetch-and-add on one shared word is cheap until
// every core does it per transaction; then the word becomes the same
// rendezvous point the PCL theorem charges TL2's clock with, except this
// one is incidental. Striping spreads the adds over per-shard padded
// words selected by a caller-supplied hint; reading sums the shards.

// maxCounterShards bounds the stripe count so sums stay short scans.
const maxCounterShards = 64

// paddedUint64 keeps one shard's word on its own cache line. Shared by
// the striped counters here and the striped version clock (clock.go).
type paddedUint64 struct {
	v atomic.Uint64
	_ [56]byte // pad to 64 bytes
}

// stripeCount sizes a stripe to the true parallelism available at
// construction: the next power of two at or above
// min(GOMAXPROCS, NumCPU), capped at max. Striping only pays off when
// the striped word is genuinely hit in parallel, so a 1-core box gets
// one shard and degenerates gracefully into the unsharded structure.
func stripeCount(max int) int {
	width := runtime.GOMAXPROCS(0)
	if c := runtime.NumCPU(); c < width {
		width = c
	}
	n := 1
	for n < width && n < max {
		n <<= 1
	}
	return n
}

// stripedCounter is a sharded uint64 accumulator. add is wait-free and
// touches one hint-selected cache line; sum scans the shards and is only
// exact when concurrent adds are quiesced (callers that need an exact
// figure — the adaptive drain — arrange that externally). Deltas may be
// negative via two's complement (add ^uint64(0) to decrement); the sum
// is computed mod 2^64, so paired increments and decrements landing on
// different shards still cancel.
type stripedCounter struct {
	shards []paddedUint64
	mask   uint64
}

// newStripedCounter sizes the stripe via stripeCount; a 1-core box gets
// one shard and degenerates into a plain atomic counter.
func newStripedCounter() stripedCounter {
	n := stripeCount(maxCounterShards)
	return stripedCounter{shards: make([]paddedUint64, n), mask: uint64(n - 1)}
}

// add applies delta to the hint-selected shard.
func (c *stripedCounter) add(hint, delta uint64) {
	c.shards[hint&c.mask].v.Add(delta)
}

// sum folds the shards mod 2^64.
func (c *stripedCounter) sum() uint64 {
	var s uint64
	for i := range c.shards {
		s += c.shards[i].v.Load()
	}
	return s
}

// poolHint derives a stripe hint from a pooled object's address. Distinct
// live objects have distinct addresses, and sync.Pool hands a P back the
// object it last put, so the hint is stable under steady load and spreads
// concurrent goroutines over shards — the same reasoning as tl2's
// commit-time shardHint.
func poolHint(p unsafe.Pointer) uint64 {
	return uint64(uintptr(p)) >> 6
}
