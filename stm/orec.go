package stm

import "sync"

// OrecShards configures the ownership-record table size for TwoPL-based
// engines created after it is set: 0 picks the default, other values are
// rounded up to a power of two and clamped to [1, maxOrecShards]. More
// shards mean fewer false conflicts (distinct variables hashing to the
// same record), fewer shards mean coarser locking — the lock-striping
// experiment the table exists for. Set it before NewEngine; engines
// already built keep their table.
var OrecShards int

// defaultOrecShards trades memory (64 B per record) against false
// conflicts: 1024 records cost 64 KiB per engine and keep the collision
// probability of a typical few-hundred-variable working set low.
const defaultOrecShards = 1024

// maxOrecShards caps the table at a size where memory (4 MiB) would start
// to matter.
const maxOrecShards = 1 << 16

// orec is one ownership record: a try-lockable mutex padded to a cache
// line so neighboring records never false-share.
type orec struct {
	mu sync.Mutex
	_  [56]byte // pad to 64 bytes
}

// orecTable maps transactional variables onto a fixed set of ownership
// records. TwoPL locks the record covering a variable instead of the
// variable itself (the classic orec indirection of word-based STMs): the
// per-variable mutex disappears from tvar, memory per variable drops,
// and the shard count becomes a striping knob. The cost is aliasing —
// distinct variables can hash to the same record and conflict spuriously
// — which is a performance effect only: locking a coarser record is
// always at least as conservative as locking the variable.
type orecTable struct {
	recs  []orec
	shift uint
}

// newOrecTable builds a table of the requested size (0 = default),
// rounded up to a power of two so the index is a multiply-shift.
func newOrecTable(shards int) *orecTable {
	if shards <= 0 {
		shards = defaultOrecShards
	}
	if shards > maxOrecShards {
		shards = maxOrecShards
	}
	n, log := 1, uint(0)
	for n < shards {
		n <<= 1
		log++
	}
	// For n == 1 the shift is 64, which Go defines as shifting everything
	// out: every variable maps to record 0.
	return &orecTable{recs: make([]orec, n), shift: 64 - log}
}

// of returns the record covering tv. Fibonacci hashing of the
// allocation-ordered id spreads sequentially allocated variables across
// the table.
func (t *orecTable) of(tv *tvar) *orec {
	return &t.recs[(tv.id*0x9E3779B97F4A7C15)>>t.shift]
}

// size returns the record count (a power of two).
func (t *orecTable) size() int { return len(t.recs) }
