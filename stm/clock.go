package stm

import "sync/atomic"

// versionClock abstracts TL2's version clock so engine variants can swap
// the contended single counter for a striped one. The contract both TL2
// engines rely on:
//
//  1. tick returns a commit timestamp strictly greater than the rv it is
//     given (so a committer's own reads, all at versions ≤ rv, stay
//     older than its writes);
//  2. any tick that completes before a snapshot begins is ≤ that
//     snapshot (so a reader's rv covers every write published before the
//     reader started);
//  3. tick returns a timestamp strictly greater than every snapshot
//     that completed before the tick began. This is what makes TL2's
//     per-read validation sound: a reader that took its snapshot before
//     a writer's commit window (write-locks held from before tick to
//     publish) sees version > rv on that writer's variables and never
//     mixes them with pre-commit values.
type versionClock interface {
	// snapshot returns the read timestamp rv for a starting transaction.
	snapshot() uint64
	// tick returns a fresh commit timestamp > rv. hint spreads
	// concurrent committers across shards where the clock is striped;
	// unsharded clocks ignore it.
	tick(rv, hint uint64) uint64
}

// globalClock is the classic TL2 clock (GV1): one fetch-and-add word.
// Every writing commit bumps the same cache line, which is exactly the
// non-disjoint-access-parallel hot spot the PCL theorem charges TL2 with.
type globalClock struct {
	c atomic.Uint64
}

func (g *globalClock) snapshot() uint64 { return g.c.Load() }

func (g *globalClock) tick(rv, _ uint64) uint64 { return g.c.Add(1) }

// maxClockShards bounds the stripe count so snapshot scans stay short on
// very wide machines.
const maxClockShards = 64

// stripedClock spreads the version clock over per-shard padded counters.
// The logical clock value is the maximum over all shards:
//
//   - snapshot scans the shards and takes the max — read-only, so
//     concurrent snapshots share the cache lines instead of fighting
//     over one exclusively-owned word;
//   - tick re-scans the shards for the current max, then CASes a single
//     hint-selected shard to past max(global, rv) — every committer
//     still *writes* only its own cache line, so disjoint commits no
//     longer serialize on one exclusively-owned word the way a
//     fetch-and-add clock makes them.
//
// All three clock invariants hold: shards are monotone and a tick stores
// its timestamp into a shard before returning, so later snapshots cover
// completed ticks (2); and tick's scan happens after the tick begins, so
// its result exceeds the global max any earlier-completed snapshot could
// have observed (3). The price of striping is snapshot/tick scans that
// grow with the shard count — which is why the stripe is sized to the
// machine — and reader snapshots that go stale faster as shards advance
// independently; the striped engine compensates for the latter with lazy
// snapshot extension (see tl2.go).
type stripedClock struct {
	shards []paddedUint64 // cache-line-padded, shared with counter.go
	mask   uint64
}

// newStripedClock sizes the stripe to the true parallelism available
// when the engine is built (stripeCount in counter.go: next power of
// two at or above min(GOMAXPROCS, NumCPU), capped at maxClockShards).
// Striping only pays off when commits genuinely run in parallel, so a
// 1-core box gets a 1-shard clock that degenerates gracefully into a
// CAS-based global clock instead of a snapshot scan with nothing to
// amortize it.
func newStripedClock() *stripedClock {
	n := stripeCount(maxClockShards)
	return &stripedClock{shards: make([]paddedUint64, n), mask: uint64(n - 1)}
}

func (s *stripedClock) snapshot() uint64 {
	var max uint64
	for i := range s.shards {
		if v := s.shards[i].v.Load(); v > max {
			max = v
		}
	}
	return max
}

func (s *stripedClock) tick(rv, hint uint64) uint64 {
	// floor is ≥ every snapshot completed before this tick began: such a
	// snapshot saw some prefix of the monotone shard values, so its max
	// is covered by the max scanned now (invariant 3).
	floor := s.snapshot()
	if rv > floor {
		floor = rv
	}
	sh := &s.shards[hint&s.mask].v
	for {
		cur := sh.Load()
		next := floor + 1
		if cur >= next {
			next = cur + 1
		}
		if sh.CompareAndSwap(cur, next) {
			return next
		}
	}
}
