package stm

import (
	"sync"
	"sync/atomic"
)

// Recording is the bridge between the production engines and the paper's
// consistency checkers (internal/conformance): a Recorder attached with
// WithRecorder collects one AttemptRecord per transaction attempt — every
// read with the value it observed, every write, and the attempt's fate —
// each event stamped with a ticket from one shared atomic counter.
//
// The stamps make the log checkable: every stamp is taken at a real-time
// point inside the span of the operation it tags (the begin stamp before
// the engine snapshots or locks anything, each op stamp when the op's
// value observation has completed, the end stamp after commit has
// published or cleanup has rolled back), so sorting all attempts' events
// by stamp yields a total order in which value observation and
// publication respect event order. Any real-time precedence present in
// the sorted log is therefore real, and a consistency condition that
// holds on the stamped history holds on the execution that produced it.
//
// When no Recorder is attached the hot path pays a single nil-check per
// operation; engines themselves are recording-agnostic (the hooks live on
// the Engine/Tx seam, above the engine/txState interfaces).

// AttemptOutcome is the fate of one recorded transaction attempt.
type AttemptOutcome int

const (
	// AttemptCommitted: the attempt committed and published its writes.
	AttemptCommitted AttemptOutcome = iota
	// AttemptConflicted: the engine killed the attempt (encounter-time
	// lock failure, snapshot or commit-time validation failure); the
	// Atomically call retried it.
	AttemptConflicted
	// AttemptAborted: the transaction function returned an error or
	// panicked; the attempt rolled back and Atomically returned.
	AttemptAborted
	// AttemptWaited: the attempt called Retry and unwound to block; its
	// reads were observed but nothing was published.
	AttemptWaited
)

var attemptOutcomeNames = [...]string{"committed", "conflicted", "aborted", "waited"}

// String returns the outcome name.
func (o AttemptOutcome) String() string {
	if o < 0 || int(o) >= len(attemptOutcomeNames) {
		return "unknown"
	}
	return attemptOutcomeNames[o]
}

// RecordedOp is one completed transactional operation of an attempt.
type RecordedOp struct {
	// Write distinguishes writes from reads.
	Write bool
	// TVar is the accessed variable's id (TVar.ID).
	TVar uint64
	// Value is the value the read observed or the write stored.
	Value any
	// Seq is the op's ticket from the recorder's shared counter, taken
	// when the operation completed.
	Seq uint64
}

// AttemptRecord is the op log of one transaction attempt.
type AttemptRecord struct {
	rec *Recorder
	// Proc is the process index the caller passed to AtomicallyAs (0 for
	// plain Atomically).
	Proc int
	// Attempt is the restart ordinal within its Atomically call.
	Attempt int
	// BeginSeq is the ticket taken before the engine began the attempt
	// (before any snapshot or lock acquisition).
	BeginSeq uint64
	// EndSeq is the ticket taken after the attempt finished: after a
	// successful commit's publication, or after cleanup rolled back.
	EndSeq uint64
	// Outcome is the attempt's fate.
	Outcome AttemptOutcome
	// Ops are the attempt's completed operations in program order.
	Ops []RecordedOp
}

// note appends one completed operation. Called only from the attempt's
// own goroutine; the shared seq counter is the only cross-attempt state.
func (a *AttemptRecord) note(write bool, id uint64, v any) {
	a.Ops = append(a.Ops, RecordedOp{Write: write, TVar: id, Value: v, Seq: a.rec.seq.Add(1)})
}

// finish stamps the attempt's end, fixes its outcome and hands it to the
// recorder. Nil-safe so the engine can call it unconditionally on every
// terminal path.
func (a *AttemptRecord) finish(o AttemptOutcome) {
	if a == nil {
		return
	}
	a.Outcome = o
	a.EndSeq = a.rec.seq.Add(1)
	a.rec.mu.Lock()
	a.rec.attempts = append(a.rec.attempts, a)
	a.rec.mu.Unlock()
}

// Recorder collects attempt records from every engine it is attached to.
// It is safe for concurrent use.
type Recorder struct {
	seq      atomic.Uint64
	mu       sync.Mutex
	attempts []*AttemptRecord
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// beginAttempt opens the record of one attempt, stamping its begin.
func (r *Recorder) beginAttempt(proc, attempt int) *AttemptRecord {
	return &AttemptRecord{rec: r, Proc: proc, Attempt: attempt, BeginSeq: r.seq.Add(1)}
}

// Take drains and returns the finished attempts recorded so far. Attempts
// in flight at the time of the call appear in a later Take.
func (r *Recorder) Take() []*AttemptRecord {
	r.mu.Lock()
	out := r.attempts
	r.attempts = nil
	r.mu.Unlock()
	return out
}

// Len reports the number of finished attempts currently held.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.attempts)
}

// Option configures an Engine at construction.
type Option func(*Engine)

// WithRecorder attaches a recorder: every attempt the engine runs is
// logged. Recording costs an atomic ticket per operation plus the log
// append; without it the engine pays one nil-check per operation.
func WithRecorder(r *Recorder) Option {
	return func(e *Engine) { e.rec = r }
}

// ID returns the variable's engine-wide id, the key recorded op logs use
// to name it (internal/conformance maps ids back to data items).
func (tv *TVar[T]) ID() uint64 { return tv.inner.id }
