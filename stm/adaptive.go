package stm

import "sync"

func init() {
	registerEngine(EngineAdaptive, "adaptive",
		"contention-sampled delegation: tl2s when conflicts are rare, twopl under write contention, glock as livelock escape",
		func() engine { return newAdaptiveEngine() })
}

// The PCL theorem says no single engine wins every regime, so this one
// changes engine with the regime: it runs every transaction through a
// delegate and samples its own behavior — conflict rate, the read/write
// operation mix, and lock-acquire failure deltas — in fixed-size
// windows of finished attempts. A regime policy with hysteresis turns those windows
// into a position on the delegate ladder:
//
//	regimeLow    EngineTL2Striped  low contention / read-dominated
//	regimeHigh   EngineTwoPL       sustained write contention
//	regimeSerial EngineGlobalLock  livelock escape hatch
//
// Delegates share the tvars but not a synchronization protocol (TL2
// validates version words that 2PL never bumps; 2PL writes in place
// where TL2 buffers), so two delegates must never run concurrently.
// Switches are therefore epoch-based: a decided switch first drains —
// in-flight attempts finish on the old delegate while new begins block —
// and only commits (epoch++, delegate swapped) once the engine is idle.
// Within an epoch exactly one delegate runs, and each delegate is
// internally consistent, so the composition stays strictly serializable.
const (
	regimeLow = iota
	regimeHigh
	regimeSerial
	regimeCount
)

// regimeKinds maps ladder positions to delegate engines.
var regimeKinds = [regimeCount]EngineKind{EngineTL2Striped, EngineTwoPL, EngineGlobalLock}

// windowMetrics summarizes one closed sampling window.
type windowMetrics struct {
	// attempts = commits + conflicts + user aborts.
	attempts uint64
	// commits and conflicts count finished attempts by outcome.
	commits, conflicts uint64
	// loads and stores count transactional operations, for the
	// read/write mix.
	loads, stores uint64
	// lockFails is the delegate's failed-acquisition delta over the
	// window.
	lockFails uint64
}

// conflictRate is the fraction of attempts that died to a conflict —
// the policy's primary signal.
func (m windowMetrics) conflictRate() float64 {
	if m.attempts == 0 {
		return 0
	}
	return float64(m.conflicts) / float64(m.attempts)
}

// writeFraction is the share of operations that were stores.
func (m windowMetrics) writeFraction() float64 {
	if m.loads+m.stores == 0 {
		return 0
	}
	return float64(m.stores) / float64(m.loads+m.stores)
}

// lockFailRate is failed lock acquisitions per attempt; it can exceed 1
// when one attempt bounces off several records, which is exactly the
// try-lock failure storm the escalation rule looks for.
func (m windowMetrics) lockFailRate() float64 {
	if m.attempts == 0 {
		return 0
	}
	return float64(m.lockFails) / float64(m.attempts)
}

// regimePolicy turns a stream of window metrics into ladder moves. It is
// deterministic given the window sequence, which is what the synthetic-
// window tests rely on.
type regimePolicy struct {
	// window is the number of finished attempts per sampling window.
	window uint64
	// high and low are the conflict-rate water marks; the gap between
	// them is the hysteresis band where streaks reset and nothing moves.
	high, low float64
	// minWriteFrac keeps read-dominated workloads on the speculative
	// engine even when conflicted: stale-read conflicts are what lazy
	// snapshot extension is for, and locking every read would serialize
	// the readers 2PL is worst at.
	minWriteFrac float64
	// escalate is the contention level — conflict rate or try-lock
	// failures per attempt, whichever is higher — at which the locking
	// regime is judged to be livelocking (symmetric try-lock failure
	// storms) and flees to the serial engine.
	escalate float64
	// needUp / needDown are the consecutive-window streaks required to
	// move up / down the ladder — the other half of the hysteresis.
	needUp, needDown int
	// cooldown is the number of windows ignored after a committed
	// switch, so the new delegate's warm-up doesn't trigger the next
	// move.
	cooldown int

	hot, cold, fleeing, settle int
}

// defaultPolicy's constants: windows small enough to react within a few
// hundred transactions; moving up needs two bad windows, moving down
// four good ones (switching down is cheap to regret, thrashing is not).
func defaultPolicy() regimePolicy {
	return regimePolicy{
		window:       128,
		high:         0.35,
		low:          0.05,
		minWriteFrac: 0.10,
		escalate:     0.90,
		needUp:       2,
		needDown:     4,
		cooldown:     2,
	}
}

// reset clears the streaks and starts the post-switch cooldown; the
// engine calls it when a switch commits.
func (p *regimePolicy) reset() {
	p.hot, p.cold, p.fleeing = 0, 0, 0
	p.settle = p.cooldown
}

// decide consumes one window and returns the regime to run next; a
// return equal to cur means stay.
func (p *regimePolicy) decide(cur int, m windowMetrics) int {
	if p.settle > 0 {
		p.settle--
		return cur
	}
	cr := m.conflictRate()
	switch {
	case cr > p.high && (m.writeFraction() >= p.minWriteFrac || cur != regimeLow):
		p.hot++
		p.cold = 0
	case cr < p.low:
		p.cold++
		p.hot, p.fleeing = 0, 0
	default:
		p.hot, p.cold, p.fleeing = 0, 0, 0
	}
	if cur == regimeHigh && (cr > p.escalate || m.lockFailRate() > p.escalate) {
		p.fleeing++
	} else {
		p.fleeing = 0
	}
	switch cur {
	case regimeLow:
		if p.hot >= p.needUp {
			return regimeHigh
		}
	case regimeHigh:
		if p.fleeing >= p.needUp {
			return regimeSerial
		}
		if p.cold >= p.needDown {
			return regimeLow
		}
	case regimeSerial:
		// The serial engine never conflicts, so every window is cold and
		// the ladder probes back down after needDown windows.
		if p.cold >= p.needDown {
			return regimeHigh
		}
	}
	return cur
}

// windowAccum is the open sampling window.
type windowAccum struct {
	attempts, commits, conflicts, loads, stores uint64
}

// regimeCounters is one delegate's cumulative share of the engine's work.
type regimeCounters struct {
	commits, conflicts, lockFails, windows uint64
}

type adaptiveEngine struct {
	mu   sync.Mutex
	cond *sync.Cond

	delegates [regimeCount]engine
	// cur is the active regime; target != cur means a switch is decided
	// and draining. inflight counts attempts begun in the current epoch
	// and not yet finished.
	cur, target int
	inflight    int
	epoch       uint64
	switches    uint64

	policy regimePolicy
	win    windowAccum
	// lockFailBase is the active delegate's failed-acquisition count at
	// the open window's start, so a window close can take the delta.
	lockFailBase uint64
	regimes      [regimeCount]regimeCounters
}

func newAdaptiveEngine() *adaptiveEngine {
	a := &adaptiveEngine{policy: defaultPolicy()}
	a.cond = sync.NewCond(&a.mu)
	for r, kind := range regimeKinds {
		a.delegates[r] = engineTable[kind].make()
	}
	return a
}

// lockFailsOf reads a delegate's cumulative failed acquisitions (0 for
// delegates without the counter).
func (a *adaptiveEngine) lockFailsOf(r int) uint64 {
	if c, ok := a.delegates[r].(lockFailCounter); ok {
		return c.lockFailCount()
	}
	return 0
}

// lockFailCount implements lockFailCounter by summing the delegates.
func (a *adaptiveEngine) lockFailCount() uint64 {
	var sum uint64
	for r := range a.delegates {
		sum += a.lockFailsOf(r)
	}
	return sum
}

// begin enters the current epoch. If a switch is draining, it blocks
// until the last old-epoch attempt finishes; the first begin to observe
// the drained engine commits the switch.
func (a *adaptiveEngine) begin(attempt int) txState {
	a.mu.Lock()
	for a.target != a.cur && a.inflight > 0 {
		a.cond.Wait()
	}
	if a.target != a.cur {
		// Drained: commit the switch. The old delegate is idle, so the
		// new one takes over a quiescent heap.
		a.cur = a.target
		a.epoch++
		a.switches++
		a.win = windowAccum{}
		a.lockFailBase = a.lockFailsOf(a.cur)
		a.policy.reset()
	}
	r := a.cur
	a.inflight++
	d := a.delegates[r]
	a.mu.Unlock()
	// The delegate's begin may block (glock) or sleep (2PL backoff);
	// keep it outside the engine lock.
	return &adaptiveTx{a: a, st: d.begin(attempt), regime: r}
}

// outcomes of one finished attempt. Only commits and conflicts move the
// policy's signals; aborts (user errors) and waits (explicit Retry)
// count as attempts alone, so a Retry-blocked consumer never reads as
// contention.
const (
	outcomeCommit = iota
	outcomeConflict
	outcomeAbort
	outcomeWait
)

// finish retires one attempt: it leaves the epoch, feeds the sampling
// window, and wakes a draining switch when the epoch empties.
func (a *adaptiveEngine) finish(tx *adaptiveTx, outcome int) {
	a.mu.Lock()
	a.inflight--
	a.win.attempts++
	a.win.loads += tx.loads
	a.win.stores += tx.stores
	rc := &a.regimes[tx.regime]
	switch outcome {
	case outcomeCommit:
		a.win.commits++
		rc.commits++
	case outcomeConflict:
		a.win.conflicts++
		rc.conflicts++
	}
	if a.target == a.cur && a.win.attempts >= a.policy.window {
		a.closeWindowLocked()
	}
	if a.target != a.cur && a.inflight == 0 {
		a.cond.Broadcast()
	}
	a.mu.Unlock()
}

// closeWindowLocked seals the open window, charges it to the active
// regime, and asks the policy for a move. Called with a.mu held and no
// switch pending.
func (a *adaptiveEngine) closeWindowLocked() {
	lf := a.lockFailsOf(a.cur)
	m := windowMetrics{
		attempts:  a.win.attempts,
		commits:   a.win.commits,
		conflicts: a.win.conflicts,
		loads:     a.win.loads,
		stores:    a.win.stores,
		lockFails: lf - a.lockFailBase,
	}
	rc := &a.regimes[a.cur]
	rc.lockFails += m.lockFails
	rc.windows++
	a.lockFailBase = lf
	a.win = windowAccum{}
	if next := a.policy.decide(a.cur, m); next != a.cur {
		// Decided, not committed: the switch takes effect at the first
		// begin after the epoch drains.
		a.target = next
	}
}

// snapshotStats backs Engine.AdaptiveStats.
func (a *adaptiveEngine) snapshotStats() AdaptiveStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := AdaptiveStats{
		Current:  regimeKinds[a.cur].String(),
		Epoch:    a.epoch + 1,
		Switches: a.switches,
	}
	for r, rc := range a.regimes {
		out.Regimes = append(out.Regimes, RegimeStats{
			Engine:    regimeKinds[r].String(),
			Commits:   rc.commits,
			Conflicts: rc.conflicts,
			LockFails: rc.lockFails,
			Windows:   rc.windows,
		})
	}
	return out
}

// adaptiveTx wraps one delegate attempt, counting its operations for the
// sampling window and retiring it from the epoch on every terminal path.
type adaptiveTx struct {
	a      *adaptiveEngine
	st     txState
	regime int
	loads  uint64
	stores uint64
}

func (tx *adaptiveTx) load(tv *tvar) any {
	tx.loads++
	return tx.st.load(tv)
}

func (tx *adaptiveTx) store(tv *tvar, v any) {
	tx.stores++
	tx.st.store(tv, v)
}

func (tx *adaptiveTx) commit() bool {
	ok := tx.st.commit()
	if ok {
		tx.a.finish(tx, outcomeCommit)
	} else {
		tx.a.finish(tx, outcomeConflict)
	}
	return ok
}

func (tx *adaptiveTx) abortCleanup() {
	tx.st.abortCleanup()
	tx.a.finish(tx, outcomeAbort)
}

func (tx *adaptiveTx) conflictCleanup() {
	tx.st.conflictCleanup()
	tx.a.finish(tx, outcomeConflict)
}

// retryCleanup unwinds an explicit Retry: the delegate releases exactly
// as for a conflict, but the window records a wait, not contention.
func (tx *adaptiveTx) retryCleanup() {
	tx.st.conflictCleanup()
	tx.a.finish(tx, outcomeWait)
}

func (tx *adaptiveTx) wrote() bool { return tx.st.wrote() }

func (tx *adaptiveTx) mark() txMark { return tx.st.mark() }

func (tx *adaptiveTx) rollbackTo(m txMark) { tx.st.rollbackTo(m) }
