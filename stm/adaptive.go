package stm

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

func init() {
	registerEngine(EngineAdaptive, "adaptive",
		"contention-sampled delegation: tl2s when conflicts are rare, twopl under write contention, glock as livelock escape",
		func() engine { return newAdaptiveEngine() })
}

// The PCL theorem says no single engine wins every regime, so this one
// changes engine with the regime: it runs every transaction through a
// delegate and samples its own behavior — conflict rate, the read/write
// operation mix, and lock-acquire failure deltas — in fixed-size
// windows of finished attempts. A regime policy with hysteresis turns those windows
// into a position on the delegate ladder:
//
//	regimeLow    EngineTL2Striped  low contention / read-dominated
//	regimeHigh   EngineTwoPL       sustained write contention
//	regimeSerial EngineGlobalLock  livelock escape hatch
//
// Delegates share the tvars but not a synchronization protocol (TL2
// validates version words that 2PL never bumps; 2PL writes in place
// where TL2 buffers), so two delegates must never run concurrently.
// Switches are therefore epoch-based: a decided switch first drains —
// in-flight attempts finish on the old delegate while new begins block —
// and only commits (epoch++, delegate swapped) once the engine is idle.
// Within an epoch exactly one delegate runs, and each delegate is
// internally consistent, so the composition stays strictly serializable.
const (
	regimeLow = iota
	regimeHigh
	regimeSerial
	regimeCount
)

// regimeKinds maps ladder positions to delegate engines.
var regimeKinds = [regimeCount]EngineKind{EngineTL2Striped, EngineTwoPL, EngineGlobalLock}

// windowMetrics summarizes one closed sampling window.
type windowMetrics struct {
	// attempts = commits + conflicts + user aborts + waits.
	attempts uint64
	// commits and conflicts count finished attempts by outcome.
	commits, conflicts uint64
	// loads and stores count transactional operations, for the
	// read/write mix.
	loads, stores uint64
	// lockFails is the delegate's failed-acquisition delta over the
	// window.
	lockFails uint64
}

// conflictRate is the fraction of attempts that died to a conflict —
// the policy's primary signal.
func (m windowMetrics) conflictRate() float64 {
	if m.attempts == 0 {
		return 0
	}
	return float64(m.conflicts) / float64(m.attempts)
}

// writeFraction is the share of operations that were stores.
func (m windowMetrics) writeFraction() float64 {
	if m.loads+m.stores == 0 {
		return 0
	}
	return float64(m.stores) / float64(m.loads+m.stores)
}

// lockFailRate is failed lock acquisitions per attempt; it can exceed 1
// when one attempt bounces off several records, which is exactly the
// try-lock failure storm the escalation rule looks for.
func (m windowMetrics) lockFailRate() float64 {
	if m.attempts == 0 {
		return 0
	}
	return float64(m.lockFails) / float64(m.attempts)
}

// regimePolicy turns a stream of window metrics into ladder moves. It is
// deterministic given the window sequence, which is what the synthetic-
// window tests rely on.
type regimePolicy struct {
	// window is the number of finished attempts per sampling window.
	window uint64
	// high and low are the conflict-rate water marks; the gap between
	// them is the hysteresis band where streaks reset and nothing moves.
	high, low float64
	// minWriteFrac keeps read-dominated workloads on the speculative
	// engine even when conflicted: stale-read conflicts are what lazy
	// snapshot extension is for, and locking every read would serialize
	// the readers 2PL is worst at.
	minWriteFrac float64
	// escalate is the contention level — conflict rate or try-lock
	// failures per attempt, whichever is higher — at which the locking
	// regime is judged to be livelocking (symmetric try-lock failure
	// storms) and flees to the serial engine.
	escalate float64
	// needUp / needDown are the consecutive-window streaks required to
	// move up / down the ladder — the other half of the hysteresis.
	needUp, needDown int
	// cooldown is the number of windows ignored after a committed
	// switch, so the new delegate's warm-up doesn't trigger the next
	// move.
	cooldown int

	hot, cold, fleeing, settle int
}

// defaultPolicy's constants: windows small enough to react within a few
// hundred transactions; moving up needs two bad windows, moving down
// four good ones (switching down is cheap to regret, thrashing is not).
func defaultPolicy() regimePolicy {
	return regimePolicy{
		window:       128,
		high:         0.35,
		low:          0.05,
		minWriteFrac: 0.10,
		escalate:     0.90,
		needUp:       2,
		needDown:     4,
		cooldown:     2,
	}
}

// reset clears the streaks and starts the post-switch cooldown; the
// engine calls it when a switch commits.
func (p *regimePolicy) reset() {
	p.hot, p.cold, p.fleeing = 0, 0, 0
	p.settle = p.cooldown
}

// decide consumes one window and returns the regime to run next; a
// return equal to cur means stay.
func (p *regimePolicy) decide(cur int, m windowMetrics) int {
	if p.settle > 0 {
		p.settle--
		return cur
	}
	cr := m.conflictRate()
	switch {
	case cr > p.high && (m.writeFraction() >= p.minWriteFrac || cur != regimeLow):
		p.hot++
		p.cold = 0
	case cr < p.low:
		p.cold++
		p.hot, p.fleeing = 0, 0
	default:
		p.hot, p.cold, p.fleeing = 0, 0, 0
	}
	if cur == regimeHigh && (cr > p.escalate || m.lockFailRate() > p.escalate) {
		p.fleeing++
	} else {
		p.fleeing = 0
	}
	switch cur {
	case regimeLow:
		if p.hot >= p.needUp {
			return regimeHigh
		}
	case regimeHigh:
		if p.fleeing >= p.needUp {
			return regimeSerial
		}
		if p.cold >= p.needDown {
			return regimeLow
		}
	case regimeSerial:
		// The serial engine never conflicts, so every window is cold and
		// the ladder probes back down after needDown windows.
		if p.cold >= p.needDown {
			return regimeHigh
		}
	}
	return cur
}

// regimeTotals is one delegate's cumulative share of the engine's work.
// commits and conflicts are striped (bumped on every finish); lockFails
// and windows are charged at window close under the engine mutex.
type regimeTotals struct {
	commits, conflicts stripedCounter
	lockFails, windows uint64
}

// The window accounting is the adaptive engine's own hot path: every
// begin and finish used to take the engine mutex, which made the engine
// that exists to exploit disjoint-access parallelism serialize all its
// attempts on one lock. Begin and finish now touch only striped per-core
// counters (counter.go):
//
//   - begin increments the striped inflight count, then re-checks for a
//     pending switch; the increment-before-check pairs with the switch
//     committer's decide-then-sum (both seq-cst), so either the beginner
//     sees the pending switch and backs out, or the drain sees the
//     beginner and waits — the epoch invariant survives without a lock.
//   - finish bumps cumulative striped counters (attempts, loads, stores,
//     per-regime commits/conflicts) and decrements inflight. Window
//     metrics are deltas of those sums against bases snapped at the last
//     close, so no per-attempt mutable window struct exists at all.
//
// The mutex remains on the cold paths only: committing a switch,
// closing a window (once per `window` attempts, elected by a CAS so the
// scan-and-close never stampedes), and stats snapshots. Because the
// deltas are read while other attempts finish, a window's metrics can be
// off by the handful of attempts in flight at close time — noise well
// under the policy's hysteresis, and the price of a lock-free hot path.
type adaptiveEngine struct {
	mu   sync.Mutex // cold paths: switch commit, window close, stats
	cond *sync.Cond

	delegates [regimeCount]engine
	// cur is the active regime; target != cur means a switch is decided
	// and draining. inflight counts attempts begun in the current epoch
	// and not yet finished.
	cur, target atomic.Int32
	inflight    stripedCounter

	// Cumulative hot-path counters; window metrics are deltas against
	// the base* fields, which are rewritten under mu at window close.
	attempts      stripedCounter
	loads, stores stripedCounter
	regimes       [regimeCount]regimeTotals

	// baseAttempts is read racily by finish for the boundary check, so
	// it is atomic; the remaining bases are only touched under mu.
	baseAttempts               atomic.Uint64
	baseCommits, baseConflicts uint64
	baseLoads, baseStores      uint64
	lockFailBase               uint64
	closing                    atomic.Bool // window-close election
	policy                     regimePolicy
	epoch, switches            uint64

	pool sync.Pool
}

func newAdaptiveEngine() *adaptiveEngine {
	a := &adaptiveEngine{policy: defaultPolicy()}
	a.cond = sync.NewCond(&a.mu)
	a.inflight = newStripedCounter()
	a.attempts = newStripedCounter()
	a.loads = newStripedCounter()
	a.stores = newStripedCounter()
	for r, kind := range regimeKinds {
		a.delegates[r] = engineTable[kind].make()
		a.regimes[r].commits = newStripedCounter()
		a.regimes[r].conflicts = newStripedCounter()
	}
	return a
}

// lockFailsOf reads a delegate's cumulative failed acquisitions (0 for
// delegates without the counter).
func (a *adaptiveEngine) lockFailsOf(r int) uint64 {
	if c, ok := a.delegates[r].(lockFailCounter); ok {
		return c.lockFailCount()
	}
	return 0
}

// lockFailCount implements lockFailCounter by summing the delegates.
func (a *adaptiveEngine) lockFailCount() uint64 {
	var sum uint64
	for r := range a.delegates {
		sum += a.lockFailsOf(r)
	}
	return sum
}

// begin enters the current epoch. The fast path is lock-free: announce
// the attempt in the striped inflight count, then confirm no switch is
// pending. If one is, back out and block until the last old-epoch
// attempt finishes; the first begin to observe the drained engine
// commits the switch.
func (a *adaptiveEngine) begin(attempt int) txState {
	tx, _ := a.pool.Get().(*adaptiveTx)
	if tx == nil {
		tx = &adaptiveTx{a: a}
	}
	hint := poolHint(unsafe.Pointer(tx))
	for {
		a.inflight.add(hint, 1)
		// Triple read: cur, target, cur again — proceed only if all
		// three agree. Two reads are not enough: a drain whose stripe
		// scan raced (and missed) our increment can commit its switch at
		// any later moment, and after a full window on the new delegate
		// the policy may store a target pointing back at our stale cur,
		// making a cur/target pair look quiescent across two committed
		// epochs. The re-read of cur closes that: once our increment is
		// visible, every subsequent drain scan sees it and blocks, so at
		// most the one racing switch can commit over us — and it flips
		// cur, which one of the two cur reads must then observe (cur
		// cannot flip away and back across the re-read, because the
		// return trip's drain would need our own inflight to reach 0).
		cur := a.cur.Load()
		if a.target.Load() == cur && a.cur.Load() == cur {
			// No switch pending at a point after our announcement: a
			// switch decided from here on must drain past our inflight
			// increment, so running on delegates[cur] is epoch-safe.
			tx.regime, tx.hint = int(cur), hint
			// The delegate's begin may block (glock) or sleep (2PL
			// backoff); it runs outside any engine lock.
			tx.st = a.delegates[cur].begin(attempt)
			return tx
		}
		a.inflight.add(hint, ^uint64(0))
		a.awaitSwitch()
	}
}

// awaitSwitch blocks while a decided switch drains, and commits it once
// the epoch is empty.
func (a *adaptiveEngine) awaitSwitch() {
	a.mu.Lock()
	for a.target.Load() != a.cur.Load() && a.inflight.sum() > 0 {
		a.cond.Wait()
	}
	if t := a.target.Load(); t != a.cur.Load() {
		// Drained: commit the switch. The old delegate is idle, so the
		// new one takes over a quiescent heap.
		a.cur.Store(t)
		a.epoch++
		a.switches++
		a.resetWindowLocked(int(t))
		a.policy.reset()
		a.cond.Broadcast()
	}
	a.mu.Unlock()
}

// resetWindowLocked discards the open window by re-basing every delta at
// the counters' current sums. Called with mu held.
func (a *adaptiveEngine) resetWindowLocked(r int) {
	a.baseAttempts.Store(a.attempts.sum())
	a.baseCommits = a.regimes[r].commits.sum()
	a.baseConflicts = a.regimes[r].conflicts.sum()
	a.baseLoads = a.loads.sum()
	a.baseStores = a.stores.sum()
	a.lockFailBase = a.lockFailsOf(r)
}

// outcomes of one finished attempt. Only commits and conflicts move the
// policy's signals; aborts (user errors) and waits (explicit Retry)
// count as attempts alone, so a Retry-blocked consumer never reads as
// contention.
const (
	outcomeCommit = iota
	outcomeConflict
	outcomeAbort
	outcomeWait
)

// finish retires one attempt: cumulative striped bumps, the epoch exit,
// and — when the window boundary is crossed with no switch pending — an
// elected window close.
func (a *adaptiveEngine) finish(tx *adaptiveTx, outcome int) {
	hint := tx.hint
	switch outcome {
	case outcomeCommit:
		a.regimes[tx.regime].commits.add(hint, 1)
	case outcomeConflict:
		a.regimes[tx.regime].conflicts.add(hint, 1)
	}
	a.loads.add(hint, tx.loads)
	a.stores.add(hint, tx.stores)
	a.attempts.add(hint, 1)
	a.inflight.add(hint, ^uint64(0))
	if a.target.Load() != a.cur.Load() {
		// A switch is draining; if this was the last in-flight attempt,
		// wake the begins blocked on the epoch boundary.
		a.mu.Lock()
		if a.inflight.sum() == 0 {
			a.cond.Broadcast()
		}
		a.mu.Unlock()
		return
	}
	if a.attempts.sum()-a.baseAttempts.Load() >= a.policy.window {
		a.tryCloseWindow()
	}
}

// tryCloseWindow elects one closer by CAS, re-checks the boundary under
// the mutex and closes the window. Losing the election is fine: the
// winner is about to close it.
func (a *adaptiveEngine) tryCloseWindow() {
	if !a.closing.CompareAndSwap(false, true) {
		return
	}
	a.mu.Lock()
	if a.target.Load() == a.cur.Load() &&
		a.attempts.sum()-a.baseAttempts.Load() >= a.policy.window {
		a.closeWindowLocked()
	}
	a.mu.Unlock()
	a.closing.Store(false)
}

// closeWindowLocked seals the open window (deltas of the cumulative
// sums against the bases), charges it to the active regime, and asks the
// policy for a move. Called with a.mu held and no switch pending.
func (a *adaptiveEngine) closeWindowLocked() {
	cur := int(a.cur.Load())
	att := a.attempts.sum()
	commits := a.regimes[cur].commits.sum()
	conflicts := a.regimes[cur].conflicts.sum()
	loads, stores := a.loads.sum(), a.stores.sum()
	lf := a.lockFailsOf(cur)
	m := windowMetrics{
		attempts:  att - a.baseAttempts.Load(),
		commits:   commits - a.baseCommits,
		conflicts: conflicts - a.baseConflicts,
		loads:     loads - a.baseLoads,
		stores:    stores - a.baseStores,
		lockFails: lf - a.lockFailBase,
	}
	a.regimes[cur].lockFails += m.lockFails
	a.regimes[cur].windows++
	a.baseAttempts.Store(att)
	a.baseCommits, a.baseConflicts = commits, conflicts
	a.baseLoads, a.baseStores = loads, stores
	a.lockFailBase = lf
	if next := a.policy.decide(cur, m); next != cur {
		// Decided, not committed: the switch takes effect at the first
		// begin after the epoch drains.
		a.target.Store(int32(next))
	}
}

// snapshotStats backs Engine.AdaptiveStats.
func (a *adaptiveEngine) snapshotStats() AdaptiveStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := AdaptiveStats{
		Current:  regimeKinds[a.cur.Load()].String(),
		Epoch:    a.epoch + 1,
		Switches: a.switches,
	}
	for r := range a.regimes {
		rt := &a.regimes[r]
		out.Regimes = append(out.Regimes, RegimeStats{
			Engine:    regimeKinds[r].String(),
			Commits:   rt.commits.sum(),
			Conflicts: rt.conflicts.sum(),
			LockFails: rt.lockFails,
			Windows:   rt.windows,
		})
	}
	return out
}

// done returns an attempt's state: the delegate's inner state to the
// delegate's pool, the wrapper to this engine's.
func (a *adaptiveEngine) done(st txState) {
	tx := st.(*adaptiveTx)
	a.delegates[tx.regime].done(tx.st)
	tx.reset()
	a.pool.Put(tx)
}

// adaptiveTx wraps one delegate attempt, counting its operations for the
// sampling window and retiring it from the epoch on every terminal path.
type adaptiveTx struct {
	a      *adaptiveEngine
	st     txState
	regime int
	hint   uint64
	loads  uint64
	stores uint64
}

func (tx *adaptiveTx) reset() {
	tx.st = nil
	tx.loads, tx.stores = 0, 0
}

func (tx *adaptiveTx) load(tv *tvar) vword {
	tx.loads++
	return tx.st.load(tv)
}

func (tx *adaptiveTx) store(tv *tvar, v vword) {
	tx.stores++
	tx.st.store(tv, v)
}

func (tx *adaptiveTx) commit() bool {
	ok := tx.st.commit()
	if ok {
		tx.a.finish(tx, outcomeCommit)
	} else {
		tx.a.finish(tx, outcomeConflict)
	}
	return ok
}

func (tx *adaptiveTx) abortCleanup() {
	tx.st.abortCleanup()
	tx.a.finish(tx, outcomeAbort)
}

func (tx *adaptiveTx) conflictCleanup() {
	tx.st.conflictCleanup()
	tx.a.finish(tx, outcomeConflict)
}

// retryCleanup unwinds an explicit Retry: the delegate releases exactly
// as for a conflict, but the window records a wait, not contention.
func (tx *adaptiveTx) retryCleanup() {
	tx.st.conflictCleanup()
	tx.a.finish(tx, outcomeWait)
}

func (tx *adaptiveTx) wrote() bool { return tx.st.wrote() }

func (tx *adaptiveTx) mark() txMark { return tx.st.mark() }

func (tx *adaptiveTx) rollbackTo(m txMark) { tx.st.rollbackTo(m) }
