// Package stm is a software transactional memory library for Go under
// real parallelism — the production-facing counterpart of the simulated
// protocols this repository uses to mechanize the PCL theorem (Bushkov,
// Dziuma, Fatourou, Guerraoui, SPAA 2014).
//
// The theorem proves that no TM can combine strict
// disjoint-access-parallelism, weak adaptive consistency and
// obstruction-freedom; every practical STM therefore picks a corner to
// give up, and this package ships one engine per corner so the tradeoff
// can be measured instead of argued:
//
//   - EngineTL2 — speculative versioned locks with a global version clock
//     (Dice/Shalev/Shavit's TL2): consistent (strictly serializable) and
//     non-blocking in the common path, but the shared clock makes it not
//     disjoint-access-parallel.
//   - EngineTL2Striped — TL2 with a cache-line-padded striped version
//     clock and lazy snapshot extension: the same speculative algorithm
//     with the single-counter hot spot spread over per-shard counters, so
//     disjoint transactions no longer serialize on one cache line.
//   - EngineTwoPL — encounter-time try-locking on a sharded ownership-
//     record table (orec.go) with whole-transaction restart on lock
//     failure: strictly serializable and disjoint-access-parallel up to
//     orec aliasing (only the accessed variables' records are touched),
//     but blocking — a preempted lock holder stalls conflicting
//     transactions.
//   - EngineGlobalLock — one global mutex: trivially consistent and
//     non-interfering, with zero parallelism.
//   - EngineAdaptive — the PCL theorem made operational: since no engine
//     can win every regime, this one samples its own contention in
//     windows and hands each epoch to the delegate whose trade-off fits
//     (speculative when conflicts are rare, locking when writes fight,
//     serial as the livelock escape hatch).
//
// Each engine lives in its own file (tl2.go, tl2striped.go, twopl.go,
// glock.go, adaptive.go) behind the engine/txState interfaces of
// engines.go and registers itself in the engine table; nothing outside
// an engine's file knows its algorithm.
//
// # Allocation contract
//
// The attempt hot path is allocation-free in steady state, values
// included. Attempt state (the Tx handle and each engine's txState,
// including read sets, write sets, undo logs, lock sets and OrElse mark
// scratch) is pooled per engine and reset between attempts, so a warmed
// transaction — including every conflict retry and every OrElse bracket
// — performs Get, Set, commit and rollback without touching the
// allocator. Write and lock sets use a small-set fast path
// (append-ordered slice, linear scan) and only allocate a map index past
// stm.SmallSetSpill entries; engine counters are striped per core
// (counter.go) rather than contended or mutex-guarded.
//
// Values flow through the engines as raw machine words (value.go), not
// as `any`: NewTVar classifies the element type once, and Set/Get move
// word-representable values with unsafe word copies instead of interface
// boxing. Zero allocations per operation for:
//
//   - word kinds: ints of every width, floats, bool, and pointer-free
//     structs or arrays up to 8 bytes;
//   - pair kinds: pointer-free types of 9..16 bytes (two-word structs,
//     complex128);
//   - strings (data pointer + length, no copy of the bytes);
//   - pointer kinds: *T, unsafe.Pointer, map, chan, func;
//   - mixed pointer+scalar structs up to 16 bytes whose pointer map is
//     exactly one pointer word (e.g. struct{P *T; N int}, either field
//     order): the pointer rides the GC slot, the scalars ride a data
//     word.
//
// The boxed fallback — interface-kind element types (TVar[any],
// TVar[error]) and types the words cannot carry (multi-pointer or
// >16-byte structs, slices) — keeps exactly the pre-word semantics and
// allocates one box per Set; it is the contract's only exemption, and it
// is per-TVar-type, never per engine. stm/alloc_test.go pins the
// contract per engine and per value kind with testing.AllocsPerRun.
//
// Usage:
//
//	eng := stm.NewEngine(stm.EngineTL2)
//	x := stm.NewTVar[int](0)
//	err := eng.Atomically(func(tx *stm.Tx) error {
//	    v := stm.Get(tx, x)
//	    stm.Set(tx, x, v+1)
//	    return nil
//	})
//
// Transactions retry automatically on conflicts; an error returned by the
// transaction function aborts the transaction (all writes rolled back)
// and is returned to the caller.
package stm

import (
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"
)

// EngineKind selects a concurrency-control algorithm.
type EngineKind int

const (
	// EngineTL2 is the speculative global-version-clock engine.
	EngineTL2 EngineKind = iota
	// EngineTL2Striped is TL2 with a striped version clock.
	EngineTL2Striped
	// EngineTwoPL is the encounter-time locking engine.
	EngineTwoPL
	// EngineGlobalLock serializes all transactions on one mutex.
	EngineGlobalLock
	// EngineAdaptive samples its own contention and delegates each
	// epoch to the engine whose PCL trade-off fits the current regime.
	EngineAdaptive

	engineKindCount // sentinel: keep last
)

// String returns the engine's short name.
func (k EngineKind) String() string {
	if k < 0 || k >= engineKindCount || engineTable[k].make == nil {
		return "unknown"
	}
	return engineTable[k].name
}

// Doc returns a one-line description of the engine's algorithm and the
// PCL corner it gives up.
func (k EngineKind) Doc() string {
	if k < 0 || k >= engineKindCount {
		return ""
	}
	return engineTable[k].doc
}

// EngineKinds lists all registered engines in declaration order.
func EngineKinds() []EngineKind {
	out := make([]EngineKind, 0, engineKindCount)
	for k := EngineKind(0); k < engineKindCount; k++ {
		if engineTable[k].make != nil {
			out = append(out, k)
		}
	}
	return out
}

// EngineByName resolves a short name; ok=false if unknown.
func EngineByName(name string) (EngineKind, bool) {
	for _, k := range EngineKinds() {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// Stats counts engine activity. All fields are cumulative.
type Stats struct {
	// Commits is the number of committed transactions.
	Commits uint64
	// Aborts is the number of user-error aborts.
	Aborts uint64
	// Retries is the number of internal conflict retries.
	Retries uint64
	// LockFails is the number of failed lock acquisitions (2PL
	// encounter-time try-locks, TL2 commit-time versioned locks) — the
	// raw contention signal the adaptive engine switches on. Zero for
	// engines that never fail an acquisition.
	LockFails uint64
}

// Engine executes transactions under one concurrency-control algorithm.
// Engines are safe for concurrent use; TVars may be shared between
// engines only if every access goes through the same engine.
type Engine struct {
	kind  EngineKind
	impl  engine    // the algorithm (owns clocks, locks, shared state)
	notif notifier  // wakes Retry-blocked transactions
	rec   *Recorder // attempt-log sink (record.go); nil when not recording
	// txPool recycles the public Tx handles; each engine pools its own
	// txStates behind engine.done. Counters are striped per core so
	// disjoint committers don't rendezvous on a stats word.
	txPool  sync.Pool
	commits stripedCounter
	aborts  stripedCounter
	retries stripedCounter
}

// newEngineShell wires the engine-independent parts (counters, notifier,
// options); shared by NewEngine and the unregistered test engines in
// broken.go.
func newEngineShell(kind EngineKind, impl engine, opts ...Option) *Engine {
	e := &Engine{kind: kind, impl: impl}
	e.commits = newStripedCounter()
	e.aborts = newStripedCounter()
	e.retries = newStripedCounter()
	e.notif.init()
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// NewEngine creates an engine of the given kind. It panics on a kind that
// is not registered (i.e. not returned by EngineKinds). Options such as
// WithRecorder configure the engine before first use.
func NewEngine(kind EngineKind, opts ...Option) *Engine {
	if kind < 0 || kind >= engineKindCount || engineTable[kind].make == nil {
		panic("stm: NewEngine: unknown engine kind")
	}
	return newEngineShell(kind, engineTable[kind].make(), opts...)
}

// Kind returns the engine's algorithm.
func (e *Engine) Kind() EngineKind { return e.kind }

// Stats returns a snapshot of the engine's counters. The striped sums are
// exact when the engine is quiescent and at most momentarily stale under
// concurrent load.
func (e *Engine) Stats() Stats {
	st := Stats{
		Commits: e.commits.sum(),
		Aborts:  e.aborts.sum(),
		Retries: e.retries.sum(),
	}
	if c, ok := e.impl.(lockFailCounter); ok {
		st.LockFails = c.lockFailCount()
	}
	return st
}

// RegimeStats is one delegate engine's share of an adaptive engine's
// work.
type RegimeStats struct {
	// Engine is the delegate's short name.
	Engine string `json:"engine"`
	// Commits and Conflicts count attempts finished while the delegate
	// was active.
	Commits   uint64 `json:"commits"`
	Conflicts uint64 `json:"conflicts"`
	// LockFails is the delegate's failed lock acquisitions.
	LockFails uint64 `json:"lock_fails"`
	// Windows is the number of sampling windows closed under the
	// delegate.
	Windows uint64 `json:"windows"`
}

// AdaptiveStats reports an adaptive engine's regime history.
type AdaptiveStats struct {
	// Current is the active delegate's short name.
	Current string `json:"current"`
	// Epoch counts committed regime switches plus one; Switches counts
	// the switches alone.
	Epoch    uint64 `json:"epoch"`
	Switches uint64 `json:"switches"`
	// Regimes breaks the engine's work down per delegate, in ladder
	// order (speculative → locking → serial).
	Regimes []RegimeStats `json:"regimes"`
}

// AdaptiveStats returns the per-regime breakdown of an EngineAdaptive
// engine; ok is false for every other kind.
func (e *Engine) AdaptiveStats() (AdaptiveStats, bool) {
	a, ok := e.impl.(*adaptiveEngine)
	if !ok {
		return AdaptiveStats{}, false
	}
	return a.snapshotStats(), true
}

// tvar is the untyped transactional variable all engines share: an
// allocation-ordered id (stable lock and orec-hash input), a TL2
// versioned lock word, and the current value in raw-word form — two
// inline atomic data words plus one GC-visible pointer slot, interpreted
// per the variable's valueKind (value.go). Publishing a
// word-representable value overwrites the words in place; nothing
// allocates.
//
// Consistency of multi-word ("wide": pair and string kinds) values is a
// seqlock discipline with two guards, one per publication regime:
//
//   - TL2 commits publish while the versioned lock's locked bit is set
//     and release by storing a fresh version, so any unlocked reader
//     whose before/after loads of the lock word agree saw untorn words.
//   - In-place engines (2PL, glock, undo rollbacks) publish inside an
//     odd/even bracket on the dedicated seq word. They cannot reuse the
//     versioned lock for this: restoring the same version would let a
//     reader's before/after check pass across a write (ABA), and minting
//     a new version would push the variable past the TL2 clock — after
//     an adaptive regime switch back to tl2s, every read of the variable
//     would fail validation forever.
//
// Narrow kinds are immune by construction: their single word is stored
// and loaded with one atomic op.
type tvar struct {
	id   uint64
	kind valueKind
	lock atomic.Uint64 // bit 63 = locked, low bits = version (TL2 engines)
	seq  atomic.Uint64 // wide-value seqlock for in-place publishes (odd = mid-write)
	w0   atomic.Uint64
	w1   atomic.Uint64
	p    atomic.Pointer[byte] // GC-visible slot: string data / pointer / *any box
}

const lockedBit = uint64(1) << 63

func version(word uint64) uint64 { return word &^ lockedBit }
func isLocked(word uint64) bool  { return word&lockedBit != 0 }

var tvarIDs atomic.Uint64

func newTVar(kind valueKind, initial vword) *tvar {
	tv := &tvar{id: tvarIDs.Add(1), kind: kind}
	tv.storeWords(initial)
	return tv
}

// storeWords writes only the words the kind uses, with no tearing guard;
// callers wrap it in whichever discipline their regime requires.
func (tv *tvar) storeWords(w vword) {
	switch tv.kind {
	case kindWord:
		tv.w0.Store(w.w0)
	case kindPair:
		tv.w0.Store(w.w0)
		tv.w1.Store(w.w1)
	case kindString, kindPtrLo, kindPtrHi:
		tv.p.Store((*byte)(w.p))
		tv.w0.Store(w.w0)
	default: // kindPointer, kindBoxed
		tv.p.Store((*byte)(w.p))
	}
}

// loadWords reads the words with no tearing guard; callers either hold
// write authority or bracket the call with a seqlock validation.
func (tv *tvar) loadWords() vword {
	switch tv.kind {
	case kindWord:
		return vword{w0: tv.w0.Load()}
	case kindPair:
		return vword{w0: tv.w0.Load(), w1: tv.w1.Load()}
	case kindString, kindPtrLo, kindPtrHi:
		return vword{w0: tv.w0.Load(), p: unsafe.Pointer(tv.p.Load())}
	default:
		return vword{p: unsafe.Pointer(tv.p.Load())}
	}
}

// publish stores w as the variable's current value from an in-place
// engine (2PL, glock, an undo rollback, the broken test engines). The
// caller holds the variable's write authority (orec or global mutex), so
// the only concurrent readers are unsynchronized ones (Peek); wide kinds
// bracket the stores with the seq word so those readers detect tearing,
// narrow kinds are one atomic store. TL2 commits use publishLocked.
func (tv *tvar) publish(w vword) {
	if !tv.kind.wide() {
		tv.storeWords(w)
		return
	}
	tv.seq.Add(1) // odd: write in progress
	tv.storeWords(w)
	tv.seq.Add(1) // even: complete
}

// publishLocked stores w while the caller holds the variable's versioned
// lock (TL2 commit). The locked bit is already visible to every reader
// and the release will publish a fresh version, so the words go in bare.
func (tv *tvar) publishLocked(w vword) {
	tv.storeWords(w)
}

// read returns the variable's current value as a consistent word
// snapshot, from any context — including outside every lock (Peek). Wide
// kinds validate both seqlock guards around the loads; narrow kinds are
// a single atomic load.
func (tv *tvar) read() vword {
	if !tv.kind.wide() {
		return tv.loadWords()
	}
	for {
		s1 := tv.seq.Load()
		l1 := tv.lock.Load()
		if s1&1 != 0 || isLocked(l1) {
			runtime.Gosched()
			continue
		}
		w := tv.loadWords()
		if tv.seq.Load() == s1 && tv.lock.Load() == l1 {
			return w
		}
		runtime.Gosched()
	}
}

// TVar is a typed transactional variable.
type TVar[T any] struct {
	inner *tvar
}

// NewTVar allocates a transactional variable holding initial. The
// element type is classified here, once: word-representable types (see
// value.go) flow through Get/Set as raw machine words and never box;
// interface kinds and types the words cannot carry use the boxed
// fallback, with exactly the pre-word semantics and cost.
func NewTVar[T any](initial T) *TVar[T] {
	kind := classify(reflect.TypeFor[T]())
	return &TVar[T]{inner: newTVar(kind, encode(kind, &initial))}
}

// Get reads the variable inside a transaction. The op is recorded after
// the load returns, so the logged value is exactly the one observed; the
// value is rematerialized for the record only when recording is on, so
// the off path stays free of interface traffic.
func Get[T any](tx *Tx, tv *TVar[T]) T {
	v := decode[T](tv.inner.kind, tx.st.load(tv.inner))
	if tx.rec != nil {
		tx.rec.note(false, tv.inner.id, v)
	}
	return v
}

// Set writes the variable inside a transaction, encoding the value into
// raw-word form at the API boundary — word-representable types cross the
// engine pipeline (write set, undo log, publication) without touching
// the allocator. The op is recorded after the store returns, so an
// encounter-time lock failure (which unwinds the attempt from inside
// store) leaves no half-completed write in the log.
func Set[T any](tx *Tx, tv *TVar[T], v T) {
	tx.st.store(tv.inner, encode(tv.inner.kind, &v))
	if tx.rec != nil {
		tx.rec.note(true, tv.inner.id, v)
	}
}

// Peek reads the variable outside any transaction. The value is a
// consistent single-variable snapshot (wide values go through the
// seqlock read protocol); cross-variable invariants need a transaction.
func (tv *TVar[T]) Peek() T {
	return decode[T](tv.inner.kind, tv.inner.read())
}

// Tx is one transaction attempt handle. It is only valid inside the
// function passed to Atomically and must not be retained or shared: the
// handle and the engine state behind it are pooled and reused by later
// attempts. All operations delegate to the engine-specific txState.
type Tx struct {
	st  txState
	rec *AttemptRecord // op log of this attempt; nil when not recording
}

// conflict is panicked to unwind a doomed transaction attempt; Atomically
// recovers it and retries.
type conflict struct{}

// Atomically runs fn as a transaction, retrying on conflicts until it
// commits or fn returns an error (which aborts and is returned).
func (e *Engine) Atomically(fn func(*Tx) error) error {
	return e.AtomicallyAs(0, fn)
}

// AtomicallyAs is Atomically with the calling process named: proc tags
// the attempt records when a Recorder is attached, giving the stamped
// history its per-process structure (the PRAM and processor-consistency
// checkers group transactions by process). Without a recorder, proc is
// ignored.
//
// The Tx handle is taken from the engine's pool once per call and reused
// across conflict retries; each attempt's engine state is likewise pooled
// (engine.done/txState.reset), so the retry loop runs allocation-free in
// steady state.
func (e *Engine) AtomicallyAs(proc int, fn func(*Tx) error) error {
	tx, _ := e.txPool.Get().(*Tx)
	if tx == nil {
		tx = new(Tx)
	}
	hint := poolHint(unsafe.Pointer(tx))
	for attempt := 0; ; attempt++ {
		err, retry := e.once(tx, fn, attempt, proc)
		if retry {
			e.retries.add(hint, 1)
			continue
		}
		tx.st, tx.rec = nil, nil
		e.txPool.Put(tx)
		if err != nil {
			e.aborts.add(hint, 1)
			return err
		}
		e.commits.add(hint, 1)
		return nil
	}
}

// once runs a single attempt; retry=true means a conflict (or an explicit
// Retry) unwound it. Recording hooks bracket the attempt: the begin stamp
// is taken before the engine snapshots or locks anything, the end stamp
// after a successful commit has published (or after cleanup rolled back),
// so stamped real-time precedence is always genuine (see record.go).
// Every terminal path hands the attempt state back to the engine's pool
// via engine.done — after cleanup has released what the state held, and
// after the last read of it (wrote) — except a user panic, which drops
// the state rather than risk pooling mid-unwind.
func (e *Engine) once(tx *Tx, fn func(*Tx) error, attempt, proc int) (err error, retry bool) {
	seq0 := e.notif.snapshot()
	var ar *AttemptRecord
	if e.rec != nil {
		ar = e.rec.beginAttempt(proc, attempt)
	}
	tx.st, tx.rec = e.impl.begin(attempt), ar

	defer func() {
		if r := recover(); r != nil {
			switch r.(type) {
			case conflict:
				tx.st.conflictCleanup()
				ar.finish(AttemptConflicted)
				e.impl.done(tx.st)
				tx.st = nil
				err, retry = nil, true
			case retrySignal:
				// Drop everything, then sleep until shared state moves.
				if rc, ok := tx.st.(retryCleaner); ok {
					rc.retryCleanup()
				} else {
					tx.st.conflictCleanup()
				}
				ar.finish(AttemptWaited)
				e.impl.done(tx.st)
				tx.st = nil
				e.notif.waitChange(seq0)
				err, retry = nil, true
			default:
				tx.st.abortCleanup()
				ar.finish(AttemptAborted)
				tx.st = nil
				panic(r)
			}
		}
	}()

	if ferr := fn(tx); ferr != nil {
		tx.st.abortCleanup()
		ar.finish(AttemptAborted)
		e.impl.done(tx.st)
		tx.st = nil
		return ferr, false
	}
	if !tx.st.commit() {
		ar.finish(AttemptConflicted)
		e.impl.done(tx.st)
		tx.st = nil
		return nil, true
	}
	ar.finish(AttemptCommitted)
	wrote := tx.st.wrote()
	e.impl.done(tx.st)
	tx.st = nil
	if wrote {
		e.notif.bump()
	}
	return nil, false
}
