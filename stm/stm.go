// Package stm is a software transactional memory library for Go under
// real parallelism — the production-facing counterpart of the simulated
// protocols this repository uses to mechanize the PCL theorem (Bushkov,
// Dziuma, Fatourou, Guerraoui, SPAA 2014).
//
// The theorem proves that no TM can combine strict
// disjoint-access-parallelism, weak adaptive consistency and
// obstruction-freedom; every practical STM therefore picks a corner to
// give up, and this package ships one engine per corner so the tradeoff
// can be measured instead of argued:
//
//   - EngineTL2 — speculative versioned locks with a global version clock
//     (Dice/Shalev/Shavit's TL2): consistent (strictly serializable) and
//     non-blocking in the common path, but the shared clock makes it not
//     disjoint-access-parallel.
//   - EngineTL2Striped — TL2 with a cache-line-padded striped version
//     clock and lazy snapshot extension: the same speculative algorithm
//     with the single-counter hot spot spread over per-shard counters, so
//     disjoint transactions no longer serialize on one cache line.
//   - EngineTwoPL — encounter-time try-locking on a sharded ownership-
//     record table (orec.go) with whole-transaction restart on lock
//     failure: strictly serializable and disjoint-access-parallel up to
//     orec aliasing (only the accessed variables' records are touched),
//     but blocking — a preempted lock holder stalls conflicting
//     transactions.
//   - EngineGlobalLock — one global mutex: trivially consistent and
//     non-interfering, with zero parallelism.
//   - EngineAdaptive — the PCL theorem made operational: since no engine
//     can win every regime, this one samples its own contention in
//     windows and hands each epoch to the delegate whose trade-off fits
//     (speculative when conflicts are rare, locking when writes fight,
//     serial as the livelock escape hatch).
//
// Each engine lives in its own file (tl2.go, tl2striped.go, twopl.go,
// glock.go, adaptive.go) behind the engine/txState interfaces of
// engines.go and registers itself in the engine table; nothing outside
// an engine's file knows its algorithm.
//
// # Allocation contract
//
// The attempt hot path is allocation-free in steady state: attempt state
// (the Tx handle and each engine's txState, including read sets, write
// sets, undo logs and lock sets) is pooled per engine and reset between
// attempts, so a warmed transaction — including every conflict retry —
// performs Get, Set, commit and rollback without touching the allocator.
// Write and lock sets use a small-set fast path (append-ordered slice,
// linear scan) and only allocate a map index past stm.SmallSetSpill
// entries; engine counters are striped per core (counter.go) rather than
// contended or mutex-guarded. The one exception is Go interface boxing:
// Set must box its value into an `any`, which allocates for values the
// runtime cannot box statically (integers outside [0,255], strings,
// structs). Pointer-shaped values and small integers box for free, and
// nothing downstream of the boxing allocates. stm/alloc_test.go pins the
// contract per engine with testing.AllocsPerRun.
//
// Usage:
//
//	eng := stm.NewEngine(stm.EngineTL2)
//	x := stm.NewTVar[int](0)
//	err := eng.Atomically(func(tx *stm.Tx) error {
//	    v := stm.Get(tx, x)
//	    stm.Set(tx, x, v+1)
//	    return nil
//	})
//
// Transactions retry automatically on conflicts; an error returned by the
// transaction function aborts the transaction (all writes rolled back)
// and is returned to the caller.
package stm

import (
	"reflect"
	"sync"
	"sync/atomic"
	"unsafe"
)

// EngineKind selects a concurrency-control algorithm.
type EngineKind int

const (
	// EngineTL2 is the speculative global-version-clock engine.
	EngineTL2 EngineKind = iota
	// EngineTL2Striped is TL2 with a striped version clock.
	EngineTL2Striped
	// EngineTwoPL is the encounter-time locking engine.
	EngineTwoPL
	// EngineGlobalLock serializes all transactions on one mutex.
	EngineGlobalLock
	// EngineAdaptive samples its own contention and delegates each
	// epoch to the engine whose PCL trade-off fits the current regime.
	EngineAdaptive

	engineKindCount // sentinel: keep last
)

// String returns the engine's short name.
func (k EngineKind) String() string {
	if k < 0 || k >= engineKindCount || engineTable[k].make == nil {
		return "unknown"
	}
	return engineTable[k].name
}

// Doc returns a one-line description of the engine's algorithm and the
// PCL corner it gives up.
func (k EngineKind) Doc() string {
	if k < 0 || k >= engineKindCount {
		return ""
	}
	return engineTable[k].doc
}

// EngineKinds lists all registered engines in declaration order.
func EngineKinds() []EngineKind {
	out := make([]EngineKind, 0, engineKindCount)
	for k := EngineKind(0); k < engineKindCount; k++ {
		if engineTable[k].make != nil {
			out = append(out, k)
		}
	}
	return out
}

// EngineByName resolves a short name; ok=false if unknown.
func EngineByName(name string) (EngineKind, bool) {
	for _, k := range EngineKinds() {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// Stats counts engine activity. All fields are cumulative.
type Stats struct {
	// Commits is the number of committed transactions.
	Commits uint64
	// Aborts is the number of user-error aborts.
	Aborts uint64
	// Retries is the number of internal conflict retries.
	Retries uint64
	// LockFails is the number of failed lock acquisitions (2PL
	// encounter-time try-locks, TL2 commit-time versioned locks) — the
	// raw contention signal the adaptive engine switches on. Zero for
	// engines that never fail an acquisition.
	LockFails uint64
}

// Engine executes transactions under one concurrency-control algorithm.
// Engines are safe for concurrent use; TVars may be shared between
// engines only if every access goes through the same engine.
type Engine struct {
	kind  EngineKind
	impl  engine    // the algorithm (owns clocks, locks, shared state)
	notif notifier  // wakes Retry-blocked transactions
	rec   *Recorder // attempt-log sink (record.go); nil when not recording
	// txPool recycles the public Tx handles; each engine pools its own
	// txStates behind engine.done. Counters are striped per core so
	// disjoint committers don't rendezvous on a stats word.
	txPool  sync.Pool
	commits stripedCounter
	aborts  stripedCounter
	retries stripedCounter
}

// newEngineShell wires the engine-independent parts (counters, notifier,
// options); shared by NewEngine and the unregistered test engines in
// broken.go.
func newEngineShell(kind EngineKind, impl engine, opts ...Option) *Engine {
	e := &Engine{kind: kind, impl: impl}
	e.commits = newStripedCounter()
	e.aborts = newStripedCounter()
	e.retries = newStripedCounter()
	e.notif.init()
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// NewEngine creates an engine of the given kind. It panics on a kind that
// is not registered (i.e. not returned by EngineKinds). Options such as
// WithRecorder configure the engine before first use.
func NewEngine(kind EngineKind, opts ...Option) *Engine {
	if kind < 0 || kind >= engineKindCount || engineTable[kind].make == nil {
		panic("stm: NewEngine: unknown engine kind")
	}
	return newEngineShell(kind, engineTable[kind].make(), opts...)
}

// Kind returns the engine's algorithm.
func (e *Engine) Kind() EngineKind { return e.kind }

// Stats returns a snapshot of the engine's counters. The striped sums are
// exact when the engine is quiescent and at most momentarily stale under
// concurrent load.
func (e *Engine) Stats() Stats {
	st := Stats{
		Commits: e.commits.sum(),
		Aborts:  e.aborts.sum(),
		Retries: e.retries.sum(),
	}
	if c, ok := e.impl.(lockFailCounter); ok {
		st.LockFails = c.lockFailCount()
	}
	return st
}

// RegimeStats is one delegate engine's share of an adaptive engine's
// work.
type RegimeStats struct {
	// Engine is the delegate's short name.
	Engine string `json:"engine"`
	// Commits and Conflicts count attempts finished while the delegate
	// was active.
	Commits   uint64 `json:"commits"`
	Conflicts uint64 `json:"conflicts"`
	// LockFails is the delegate's failed lock acquisitions.
	LockFails uint64 `json:"lock_fails"`
	// Windows is the number of sampling windows closed under the
	// delegate.
	Windows uint64 `json:"windows"`
}

// AdaptiveStats reports an adaptive engine's regime history.
type AdaptiveStats struct {
	// Current is the active delegate's short name.
	Current string `json:"current"`
	// Epoch counts committed regime switches plus one; Switches counts
	// the switches alone.
	Epoch    uint64 `json:"epoch"`
	Switches uint64 `json:"switches"`
	// Regimes breaks the engine's work down per delegate, in ladder
	// order (speculative → locking → serial).
	Regimes []RegimeStats `json:"regimes"`
}

// AdaptiveStats returns the per-regime breakdown of an EngineAdaptive
// engine; ok is false for every other kind.
func (e *Engine) AdaptiveStats() (AdaptiveStats, bool) {
	a, ok := e.impl.(*adaptiveEngine)
	if !ok {
		return AdaptiveStats{}, false
	}
	return a.snapshotStats(), true
}

// tvar is the untyped transactional variable all engines share: an
// allocation-ordered id (stable lock and orec-hash input), a TL2
// versioned lock word, and the current value.
//
// The value lives in an atomic.Value so publishing a write stores the
// interface words directly instead of allocating a fresh *any box per
// publish (atomic.Value overwrites only the data word once the type is
// fixed). atomic.Value requires every store to carry the same concrete
// type, which NewTVar guarantees for concrete T; for interface-kind T
// (TVar[error], TVar[any]) the dynamic type varies, so those variables
// set boxed and publish through a fresh *any per write — the pre-existing
// cost, confined to the types that need it.
type tvar struct {
	id    uint64
	boxed bool
	lock  atomic.Uint64 // bit 63 = locked, low bits = version
	val   atomic.Value
}

const lockedBit = uint64(1) << 63

func version(word uint64) uint64 { return word &^ lockedBit }
func isLocked(word uint64) bool  { return word&lockedBit != 0 }

var tvarIDs atomic.Uint64

func newTVar(initial any, boxed bool) *tvar {
	tv := &tvar{id: tvarIDs.Add(1), boxed: boxed}
	tv.publish(initial)
	return tv
}

// publish stores v as the variable's current value. Engines call it only
// while holding the variable's write authority (versioned lock, orec, or
// the global mutex); racing readers are safe because the store is atomic
// and the boxes an interface value points at are immutable.
func (tv *tvar) publish(v any) {
	if tv.boxed {
		nv := v
		tv.val.Store(&nv)
		return
	}
	tv.val.Store(v)
}

// read returns the variable's current value.
func (tv *tvar) read() any {
	v := tv.val.Load()
	if tv.boxed {
		return *(v.(*any))
	}
	return v
}

// TVar is a typed transactional variable.
type TVar[T any] struct {
	inner *tvar
}

// NewTVar allocates a transactional variable holding initial.
func NewTVar[T any](initial T) *TVar[T] {
	boxed := reflect.TypeFor[T]().Kind() == reflect.Interface
	return &TVar[T]{inner: newTVar(initial, boxed)}
}

// Get reads the variable inside a transaction. The op is recorded after
// the load returns, so the logged value is exactly the one observed.
func Get[T any](tx *Tx, tv *TVar[T]) T {
	v := tx.st.load(tv.inner).(T)
	if tx.rec != nil {
		tx.rec.note(false, tv.inner.id, v)
	}
	return v
}

// Set writes the variable inside a transaction. The op is recorded after
// the store returns, so an encounter-time lock failure (which unwinds the
// attempt from inside store) leaves no half-completed write in the log.
func Set[T any](tx *Tx, tv *TVar[T], v T) {
	tx.st.store(tv.inner, v)
	if tx.rec != nil {
		tx.rec.note(true, tv.inner.id, v)
	}
}

// Peek reads the variable outside any transaction. The value is a
// consistent single-variable snapshot; cross-variable invariants need a
// transaction.
func (tv *TVar[T]) Peek() T {
	return tv.inner.read().(T)
}

// Tx is one transaction attempt handle. It is only valid inside the
// function passed to Atomically and must not be retained or shared: the
// handle and the engine state behind it are pooled and reused by later
// attempts. All operations delegate to the engine-specific txState.
type Tx struct {
	st  txState
	rec *AttemptRecord // op log of this attempt; nil when not recording
}

// conflict is panicked to unwind a doomed transaction attempt; Atomically
// recovers it and retries.
type conflict struct{}

// Atomically runs fn as a transaction, retrying on conflicts until it
// commits or fn returns an error (which aborts and is returned).
func (e *Engine) Atomically(fn func(*Tx) error) error {
	return e.AtomicallyAs(0, fn)
}

// AtomicallyAs is Atomically with the calling process named: proc tags
// the attempt records when a Recorder is attached, giving the stamped
// history its per-process structure (the PRAM and processor-consistency
// checkers group transactions by process). Without a recorder, proc is
// ignored.
//
// The Tx handle is taken from the engine's pool once per call and reused
// across conflict retries; each attempt's engine state is likewise pooled
// (engine.done/txState.reset), so the retry loop runs allocation-free in
// steady state.
func (e *Engine) AtomicallyAs(proc int, fn func(*Tx) error) error {
	tx, _ := e.txPool.Get().(*Tx)
	if tx == nil {
		tx = new(Tx)
	}
	hint := poolHint(unsafe.Pointer(tx))
	for attempt := 0; ; attempt++ {
		err, retry := e.once(tx, fn, attempt, proc)
		if retry {
			e.retries.add(hint, 1)
			continue
		}
		tx.st, tx.rec = nil, nil
		e.txPool.Put(tx)
		if err != nil {
			e.aborts.add(hint, 1)
			return err
		}
		e.commits.add(hint, 1)
		return nil
	}
}

// once runs a single attempt; retry=true means a conflict (or an explicit
// Retry) unwound it. Recording hooks bracket the attempt: the begin stamp
// is taken before the engine snapshots or locks anything, the end stamp
// after a successful commit has published (or after cleanup rolled back),
// so stamped real-time precedence is always genuine (see record.go).
// Every terminal path hands the attempt state back to the engine's pool
// via engine.done — after cleanup has released what the state held, and
// after the last read of it (wrote) — except a user panic, which drops
// the state rather than risk pooling mid-unwind.
func (e *Engine) once(tx *Tx, fn func(*Tx) error, attempt, proc int) (err error, retry bool) {
	seq0 := e.notif.snapshot()
	var ar *AttemptRecord
	if e.rec != nil {
		ar = e.rec.beginAttempt(proc, attempt)
	}
	tx.st, tx.rec = e.impl.begin(attempt), ar

	defer func() {
		if r := recover(); r != nil {
			switch r.(type) {
			case conflict:
				tx.st.conflictCleanup()
				ar.finish(AttemptConflicted)
				e.impl.done(tx.st)
				tx.st = nil
				err, retry = nil, true
			case retrySignal:
				// Drop everything, then sleep until shared state moves.
				if rc, ok := tx.st.(retryCleaner); ok {
					rc.retryCleanup()
				} else {
					tx.st.conflictCleanup()
				}
				ar.finish(AttemptWaited)
				e.impl.done(tx.st)
				tx.st = nil
				e.notif.waitChange(seq0)
				err, retry = nil, true
			default:
				tx.st.abortCleanup()
				ar.finish(AttemptAborted)
				tx.st = nil
				panic(r)
			}
		}
	}()

	if ferr := fn(tx); ferr != nil {
		tx.st.abortCleanup()
		ar.finish(AttemptAborted)
		e.impl.done(tx.st)
		tx.st = nil
		return ferr, false
	}
	if !tx.st.commit() {
		ar.finish(AttemptConflicted)
		e.impl.done(tx.st)
		tx.st = nil
		return nil, true
	}
	ar.finish(AttemptCommitted)
	wrote := tx.st.wrote()
	e.impl.done(tx.st)
	tx.st = nil
	if wrote {
		e.notif.bump()
	}
	return nil, false
}
