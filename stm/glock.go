package stm

import "sync"

func init() {
	registerEngine(EngineGlobalLock, "glock",
		"one global mutex around every transaction (consistent, live, zero parallelism)",
		func() engine { return &glockEngine{} })
}

// glockEngine serializes all transactions on one mutex: trivially
// consistent and non-interfering, with zero parallelism — the third
// corner of the PCL triangle surrendered outright.
type glockEngine struct {
	mu   sync.Mutex
	pool sync.Pool
}

// glockTx is one global-lock attempt: the lock is held from begin to
// commit, writes go in place with an undo log for aborts.
type glockTx struct {
	eng  *glockEngine
	undo undoLog
}

func (e *glockEngine) begin(attempt int) txState {
	tx, _ := e.pool.Get().(*glockTx)
	if tx == nil {
		tx = &glockTx{eng: e}
	}
	e.mu.Lock()
	return tx
}

func (e *glockEngine) done(st txState) {
	st.reset()
	e.pool.Put(st)
}

func (tx *glockTx) reset() { tx.undo.reset() }

func (tx *glockTx) load(tv *tvar) vword {
	return tv.read()
}

func (tx *glockTx) store(tv *tvar, v vword) {
	tx.undo.push(tv)
	tv.publish(v)
}

func (tx *glockTx) commit() bool {
	tx.eng.mu.Unlock()
	return true
}

func (tx *glockTx) abortCleanup() {
	tx.undo.rollback()
	tx.eng.mu.Unlock()
}

// conflictCleanup: the global engine never conflicts, but an explicit
// Retry unwinds through here and must release the lock so writers can
// make the awaited condition true.
func (tx *glockTx) conflictCleanup() {
	tx.undo.rollback()
	tx.eng.mu.Unlock()
}

func (tx *glockTx) wrote() bool { return len(tx.undo) > 0 }

func (tx *glockTx) mark() txMark { return txMark{n: len(tx.undo)} }

func (tx *glockTx) rollbackTo(m txMark) { tx.undo.rollbackTo(m.n) }
