package stm

import "testing"

func TestEngineTableComplete(t *testing.T) {
	kinds := EngineKinds()
	if len(kinds) != 5 {
		t.Fatalf("EngineKinds() = %v, want 5 engines", kinds)
	}
	want := []EngineKind{EngineTL2, EngineTL2Striped, EngineTwoPL, EngineGlobalLock, EngineAdaptive}
	for i, k := range want {
		if kinds[i] != k {
			t.Errorf("EngineKinds()[%d] = %v, want %v", i, kinds[i], k)
		}
	}
}

func TestEngineNamesUniqueAndDocumented(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range EngineKinds() {
		name := k.String()
		if name == "" || name == "unknown" {
			t.Errorf("engine %d has no name", int(k))
		}
		if seen[name] {
			t.Errorf("duplicate engine name %q", name)
		}
		seen[name] = true
		if k.Doc() == "" {
			t.Errorf("engine %q has no doc line", name)
		}
	}
}

func TestEngineNameRoundTrip(t *testing.T) {
	for _, k := range EngineKinds() {
		got, ok := EngineByName(k.String())
		if !ok || got != k {
			t.Errorf("EngineByName(%q) = %v, %v, want %v", k.String(), got, ok, k)
		}
	}
	for _, bogus := range []string{"", "bogus", "TL2", "tl2 "} {
		if _, ok := EngineByName(bogus); ok {
			t.Errorf("EngineByName(%q) accepted", bogus)
		}
	}
}

func TestUnknownKindStringAndDoc(t *testing.T) {
	if s := EngineKind(-1).String(); s != "unknown" {
		t.Errorf("EngineKind(-1).String() = %q", s)
	}
	if s := engineKindCount.String(); s != "unknown" {
		t.Errorf("engineKindCount.String() = %q", s)
	}
	if d := EngineKind(-1).Doc(); d != "" {
		t.Errorf("EngineKind(-1).Doc() = %q", d)
	}
}

func TestNewEngineUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewEngine(engineKindCount) did not panic")
		}
	}()
	NewEngine(engineKindCount)
}

// TestStripedEngineDisjointStats runs a disjoint workload on the striped
// engine and checks that disjoint transactions essentially never retry —
// the property the striped clock exists for.
func TestStripedEngineDisjointStats(t *testing.T) {
	e := NewEngine(EngineTL2Striped)
	const workers = 8
	const perW = 500
	vars := make([]*TVar[int], workers)
	for i := range vars {
		vars[i] = NewTVar[int](0)
	}
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < perW; i++ {
				_ = e.Atomically(func(tx *Tx) error {
					Set(tx, vars[w], Get(tx, vars[w])+1)
					return nil
				})
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	for i, v := range vars {
		if got := v.Peek(); got != perW {
			t.Errorf("var %d = %d, want %d", i, got, perW)
		}
	}
	st := e.Stats()
	if st.Commits != workers*perW {
		t.Errorf("commits = %d, want %d", st.Commits, workers*perW)
	}
	// Disjoint write sets cannot conflict on versioned locks; with lazy
	// extension the stale-snapshot restarts are absorbed too.
	if st.Retries > st.Commits/10 {
		t.Errorf("disjoint workload retried %d times over %d commits", st.Retries, st.Commits)
	}
}
