package stm

// Small-set fast paths for the per-attempt collections. Transactions in
// every registered workload pattern touch a handful of variables, so the
// per-attempt map[*tvar]any write set (tl2) and map[*orec]bool lock set
// (twopl) paid map-header allocation, hashing and GC scanning for sets
// that almost never exceed a few entries. Both are now an append-ordered
// slice that linear-scans below a spill threshold and attaches a lazily
// allocated map index only beyond it; the slices live in pooled attempt
// state (see txState.reset in engines.go), so in steady state membership
// tests, inserts and commit-time ordering touch the allocator zero times.

// defaultSmallSetSpill is the entry count past which the small-set
// structures build a map index. Eight covers the overwhelming case in
// every registered workload pattern while keeping the linear scan within
// one or two cache lines of entries.
const defaultSmallSetSpill = 8

// SmallSetSpill overrides the spill threshold for engines created after
// it is set: 0 picks the default. Raising it trades longer linear scans
// for later map allocation on large transactions; it exists as a knob for
// the same reason OrecShards does — so the threshold is measurable, not
// argued. Set it before NewEngine; engines already built keep theirs.
var SmallSetSpill int

// spillThreshold resolves the knob at engine construction.
func spillThreshold() int {
	if SmallSetSpill > 0 {
		return SmallSetSpill
	}
	return defaultSmallSetSpill
}

// writeEntry is one buffered write, value in raw-word form (value.go).
type writeEntry struct {
	tv *tvar
	v  vword
}

// writeSet buffers an attempt's writes in first-write order (the order
// mark/rollbackTo truncates by). Lookups linear-scan the slice until it
// spills past the threshold, after which idx maps each variable to its
// entry. reset keeps the backing storage for the next pooled attempt.
type writeSet struct {
	entries []writeEntry
	spill   int
	idx     map[*tvar]int
}

func (ws *writeSet) init(spill int) {
	if spill <= 0 {
		spill = defaultSmallSetSpill
	}
	ws.spill = spill
}

func (ws *writeSet) len() int { return len(ws.entries) }

// lookup returns the index of tv's entry.
func (ws *writeSet) lookup(tv *tvar) (int, bool) {
	if ws.idx != nil {
		i, ok := ws.idx[tv]
		return i, ok
	}
	for i := range ws.entries {
		if ws.entries[i].tv == tv {
			return i, true
		}
	}
	return 0, false
}

// get returns the buffered value for tv.
func (ws *writeSet) get(tv *tvar) (vword, bool) {
	if i, ok := ws.lookup(tv); ok {
		return ws.entries[i].v, true
	}
	return vword{}, false
}

// put buffers v for tv, overwriting in place on a rewrite. Crossing the
// spill threshold builds the map index once; it then tracks every insert.
func (ws *writeSet) put(tv *tvar, v vword) {
	if i, ok := ws.lookup(tv); ok {
		ws.entries[i].v = v
		return
	}
	ws.entries = append(ws.entries, writeEntry{tv: tv, v: v})
	switch {
	case ws.idx != nil:
		ws.idx[tv] = len(ws.entries) - 1
	case len(ws.entries) > ws.spill:
		ws.idx = make(map[*tvar]int, 2*len(ws.entries))
		ws.reindex()
	}
}

// reindex rebuilds the map index from the entries.
func (ws *writeSet) reindex() {
	for i := range ws.entries {
		ws.idx[ws.entries[i].tv] = i
	}
}

// sortByID insertion-sorts the entries by variable id — the commit-time
// lock order. Cheap below the spill threshold and replaces the former
// sorted copy plus sort.Slice closure; first-write order is given up, but
// commit is the attempt's last act, so no mark can still be rolled back.
func (ws *writeSet) sortByID() {
	es := ws.entries
	for i := 1; i < len(es); i++ {
		e := es[i]
		j := i - 1
		for j >= 0 && es[j].tv.id > e.tv.id {
			es[j+1] = es[j]
			j--
		}
		es[j+1] = e
	}
	if ws.idx != nil {
		ws.reindex()
	}
}

// containsSorted reports membership after sortByID, by binary search.
func (ws *writeSet) containsSorted(tv *tvar) bool {
	if ws.idx != nil {
		_, ok := ws.idx[tv]
		return ok
	}
	lo, hi := 0, len(ws.entries)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ws.entries[mid].tv.id < tv.id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(ws.entries) && ws.entries[lo].tv == tv
}

// truncate drops every entry from n on and restores saved over the
// surviving prefix — the rollbackTo half of the OrElse bracket. The map
// index, if any, is rebuilt to match.
func (ws *writeSet) truncate(n int, saved []writeEntry) {
	clear(ws.entries[n:])
	ws.entries = ws.entries[:n]
	copy(ws.entries, saved)
	if ws.idx != nil {
		clear(ws.idx)
		ws.reindex()
	}
}

// reset empties the set for reuse, zeroing dropped entries so a pooled
// attempt state pins neither variables nor values between uses.
func (ws *writeSet) reset() {
	clear(ws.entries)
	ws.entries = ws.entries[:0]
	if ws.idx != nil {
		clear(ws.idx)
	}
}

// lockSet is the 2PL analogue for held ownership records: acquisition
// order in the slice (the release order walks it backward), linear-scan
// membership below the spill threshold, lazy map index beyond it.
type lockSet struct {
	held  []*orec
	spill int
	idx   map[*orec]struct{}
}

func (ls *lockSet) init(spill int) {
	if spill <= 0 {
		spill = defaultSmallSetSpill
	}
	ls.spill = spill
}

func (ls *lockSet) contains(o *orec) bool {
	if ls.idx != nil {
		_, ok := ls.idx[o]
		return ok
	}
	for _, h := range ls.held {
		if h == o {
			return true
		}
	}
	return false
}

func (ls *lockSet) add(o *orec) {
	ls.held = append(ls.held, o)
	switch {
	case ls.idx != nil:
		ls.idx[o] = struct{}{}
	case len(ls.held) > ls.spill:
		ls.idx = make(map[*orec]struct{}, 2*len(ls.held))
		for _, h := range ls.held {
			ls.idx[h] = struct{}{}
		}
	}
}

// reset empties the set for reuse; the caller has already released the
// records.
func (ls *lockSet) reset() {
	clear(ls.held)
	ls.held = ls.held[:0]
	if ls.idx != nil {
		clear(ls.idx)
	}
}
