package stm

import (
	"errors"
	"testing"
)

// intWord encodes a small test integer as a one-word value.
func intWord(i int) vword { return vword{w0: uint64(i)} }

func wsVars(n int) []*tvar {
	out := make([]*tvar, n)
	for i := range out {
		out[i] = newTVar(kindWord, vword{})
	}
	return out
}

// TestWriteSetSmallAndSpill drives the write set across the spill
// boundary: lookups and overwrites must behave identically on the
// linear-scan path and the map-indexed path.
func TestWriteSetSmallAndSpill(t *testing.T) {
	const spill = 4
	tvs := wsVars(spill * 3)
	var ws writeSet
	ws.init(spill)
	for i, tv := range tvs {
		ws.put(tv, intWord(i))
		if i+1 <= spill && ws.idx != nil {
			t.Fatalf("map index built at %d entries, spill is %d", i+1, spill)
		}
	}
	if ws.idx == nil {
		t.Fatalf("map index never built past the spill threshold")
	}
	if ws.len() != len(tvs) {
		t.Fatalf("len = %d, want %d", ws.len(), len(tvs))
	}
	for i, tv := range tvs {
		if v, ok := ws.get(tv); !ok || v.w0 != uint64(i) {
			t.Fatalf("get(%d) = %v, %v", i, v, ok)
		}
	}
	// Overwrites keep the entry count and position.
	ws.put(tvs[1], intWord(100))
	if v, _ := ws.get(tvs[1]); v.w0 != 100 || ws.len() != len(tvs) {
		t.Fatalf("overwrite: got %v, len %d", v, ws.len())
	}
	if _, ok := ws.get(newTVar(kindWord, vword{})); ok {
		t.Fatal("get of absent variable succeeded")
	}
}

// TestWriteSetSortAndMembership: sortByID orders entries by id whatever
// the insertion order, and containsSorted agrees with membership both
// below and above the spill threshold.
func TestWriteSetSortAndMembership(t *testing.T) {
	for _, n := range []int{3, 20} { // below and above the default spill
		tvs := wsVars(n)
		var ws writeSet
		ws.init(0)
		for i := len(tvs) - 1; i >= 0; i-- { // reverse insertion
			ws.put(tvs[i], intWord(i))
		}
		ws.sortByID()
		for i := 1; i < len(ws.entries); i++ {
			if ws.entries[i-1].tv.id >= ws.entries[i].tv.id {
				t.Fatalf("n=%d: entries not sorted by id at %d", n, i)
			}
		}
		for i, tv := range tvs {
			if !ws.containsSorted(tv) {
				t.Fatalf("n=%d: containsSorted missed member %d", n, i)
			}
			if v, ok := ws.get(tv); !ok || v.w0 != uint64(i) {
				t.Fatalf("n=%d: get(%d) after sort = %v, %v", n, i, v, ok)
			}
		}
		if ws.containsSorted(newTVar(kindWord, vword{})) {
			t.Fatalf("n=%d: containsSorted accepted non-member", n)
		}
	}
}

// TestWriteSetTruncateRestoresOverwrites: the mark/rollback bracket must
// restore a pre-mark entry's value that the truncated suffix overwrote.
func TestWriteSetTruncateRestoresOverwrites(t *testing.T) {
	tvs := wsVars(12) // spills at the default 8
	var ws writeSet
	ws.init(0)
	for i, tv := range tvs {
		ws.put(tv, intWord(i))
	}
	// Snapshot, then overwrite an early entry and add nothing new.
	n := ws.len()
	saved := make([]writeEntry, n)
	copy(saved, ws.entries)
	ws.put(tvs[2], intWord(222))
	ws.put(newTVar(kindWord, vword{}), intWord(999))
	ws.truncate(n, saved)
	if ws.len() != n {
		t.Fatalf("len after truncate = %d, want %d", ws.len(), n)
	}
	if v, _ := ws.get(tvs[2]); v.w0 != 2 {
		t.Fatalf("overwritten pre-mark value not restored: %v", v)
	}
	ws.reset()
	if ws.len() != 0 {
		t.Fatalf("reset left %d entries", ws.len())
	}
	if _, ok := ws.get(tvs[0]); ok {
		t.Fatal("reset left a live index entry")
	}
}

// TestLockSetSmallAndSpill mirrors the write-set test for the 2PL lock
// set.
func TestLockSetSmallAndSpill(t *testing.T) {
	const spill = 4
	recs := make([]*orec, spill*3)
	tab := newOrecTable(len(recs) * 8)
	for i := range recs {
		recs[i] = &tab.recs[i]
	}
	var ls lockSet
	ls.init(spill)
	for i, o := range recs {
		if ls.contains(o) {
			t.Fatalf("contains(%d) before add", i)
		}
		ls.add(o)
		if !ls.contains(o) {
			t.Fatalf("contains(%d) false after add", i)
		}
	}
	if ls.idx == nil {
		t.Fatal("lock set never spilled to the map index")
	}
	if len(ls.held) != len(recs) {
		t.Fatalf("held %d records, want %d", len(ls.held), len(recs))
	}
	ls.reset()
	if len(ls.held) != 0 || ls.contains(recs[0]) {
		t.Fatal("reset left held records")
	}
}

// TestOrElsePreMarkOverwriteRestored is the engine-level version of the
// truncate test: an abandoned alternative overwrites a value the
// transaction wrote before the OrElse; falling back must see the
// pre-OrElse value again, on every engine.
func TestOrElsePreMarkOverwriteRestored(t *testing.T) {
	for _, e := range engines(t) {
		x := NewTVar[int](0)
		if err := e.Atomically(func(tx *Tx) error {
			Set(tx, x, 1) // pre-mark write
			return OrElse(tx,
				func(tx *Tx) error {
					Set(tx, x, 2) // overwrites the pre-mark write
					Retry(tx)     // abandon: the overwrite must be undone
					return nil
				},
				func(tx *Tx) error {
					if got := Get(tx, x); got != 1 {
						return errors.New("pre-mark write not restored")
					}
					return nil
				})
		}); err != nil {
			t.Errorf("%v: %v", e.Kind(), err)
		}
		if got := x.Peek(); got != 1 {
			t.Errorf("%v: committed x = %d, want 1", e.Kind(), got)
		}
	}
}
