package stm

import (
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"
)

func init() {
	registerEngine(EngineTL2, "tl2",
		"speculative TL2: versioned locks, one global version clock (consistent, non-blocking, not DAP)",
		func() engine { return &tl2Engine{clock: &globalClock{}, spill: spillThreshold()} })
}

// tl2Engine is speculative TL2 (Dice/Shalev/Shavit): reads are validated
// against a version clock, writes are buffered and published under
// short-lived versioned locks at commit. The clock implementation is the
// only difference between EngineTL2 (one global counter) and
// EngineTL2Striped (per-shard counters with lazy snapshot extension, see
// tl2striped.go).
type tl2Engine struct {
	clock versionClock
	// extend enables lazy snapshot extension: a read that observes a
	// version newer than rv re-snapshots the clock and revalidates the
	// read set instead of restarting outright. Off for classic TL2,
	// whose single clock makes stale snapshots rare; on for the striped
	// clock, whose reused timestamps make them common.
	extend bool
	// spill is the small-set threshold captured at construction.
	spill int
	// pool recycles tl2Tx attempt state (see engine.done).
	pool sync.Pool
	// lockFails counts commit-time versioned-lock acquisitions that
	// exhausted their spin budget (see Stats.LockFails).
	lockFails atomic.Uint64
}

func (e *tl2Engine) lockFailCount() uint64 { return e.lockFails.Load() }

// tl2Tx is one TL2 transaction attempt: a read snapshot, a validated
// read set, a buffered small-set write set in first-write order, and the
// pooled scratch OrElse marks copy their prefixes into.
type tl2Tx struct {
	eng     *tl2Engine
	rv      uint64
	reads   []readEntry
	ws      writeSet
	markBuf []writeEntry
}

type readEntry struct {
	tv  *tvar
	ver uint64
}

func (e *tl2Engine) begin(attempt int) txState {
	tx, _ := e.pool.Get().(*tl2Tx)
	if tx == nil {
		tx = &tl2Tx{eng: e}
		tx.ws.init(e.spill)
	}
	tx.rv = e.clock.snapshot()
	return tx
}

func (e *tl2Engine) done(st txState) {
	st.reset()
	e.pool.Put(st)
}

// reset truncates the read and write sets and the mark scratch for
// reuse, keeping their backing storage.
func (tx *tl2Tx) reset() {
	clear(tx.reads)
	tx.reads = tx.reads[:0]
	tx.ws.reset()
	clear(tx.markBuf)
	tx.markBuf = tx.markBuf[:0]
	tx.rv = 0
}

// load implements TL2's versioned read: a lock-stable value whose version
// does not postdate the transaction's read snapshot. The word loads are
// bare — the l1/l2 bracket on the versioned lock already rejects any
// value a concurrent commit was publishing, wide kinds included.
func (tx *tl2Tx) load(tv *tvar) vword {
	if v, ok := tx.ws.get(tv); ok {
		return v
	}
	for {
		l1 := tv.lock.Load()
		if isLocked(l1) {
			runtime.Gosched()
			continue
		}
		v := tv.loadWords()
		l2 := tv.lock.Load()
		if l1 != l2 {
			continue
		}
		if version(l1) > tx.rv {
			if !tx.eng.extend || !tx.extendSnapshot() {
				panic(conflict{}) // snapshot too old: restart with a fresh rv
			}
			continue // rv advanced past the version; re-read
		}
		tx.reads = append(tx.reads, readEntry{tv, version(l1)})
		return v
	}
}

// extendSnapshot advances rv to the current clock if every read so far is
// still at its recorded version — TinySTM/LSA-style lazy extension. On
// success the attempt keeps running with the newer snapshot; on failure
// it is doomed and the caller restarts it.
func (tx *tl2Tx) extendSnapshot() bool {
	newRV := tx.eng.clock.snapshot()
	for _, r := range tx.reads {
		l := r.tv.lock.Load()
		if version(l) != r.ver || isLocked(l) {
			return false
		}
	}
	tx.rv = newRV
	return true
}

func (tx *tl2Tx) store(tv *tvar, v vword) {
	tx.ws.put(tv, v)
}

// commit implements TL2's commit: sort the write set in id order in
// place, lock it, take a commit timestamp, validate the read set,
// publish, release. The locked prefix is tracked by index into the
// sorted entries — no second slice, no sort closure.
func (tx *tl2Tx) commit() bool {
	if tx.ws.len() == 0 {
		// Read-only transactions validated every read against rv; done.
		return true
	}
	tx.ws.sortByID()
	es := tx.ws.entries
	nlocked := 0
	for i := range es {
		tv := es[i].tv
		acquired := false
		for spin := 0; spin < 64; spin++ {
			l := tv.lock.Load()
			if isLocked(l) {
				runtime.Gosched()
				continue
			}
			if tv.lock.CompareAndSwap(l, l|lockedBit) {
				acquired = true
				break
			}
		}
		if !acquired {
			tx.eng.lockFails.Add(1)
			releaseLocked(es[:nlocked])
			return false
		}
		nlocked++
	}

	wv := tx.eng.clock.tick(tx.rv, tx.shardHint())

	for _, r := range tx.reads {
		l := r.tv.lock.Load()
		if version(l) != r.ver || (isLocked(l) && !tx.ws.containsSorted(r.tv)) {
			releaseLocked(es)
			return false
		}
	}

	for i := range es {
		es[i].tv.publishLocked(es[i].v)
		es[i].tv.lock.Store(wv) // publish new version and release
	}
	return true
}

// releaseLocked unlocks the given prefix of the write set without
// advancing versions.
func releaseLocked(es []writeEntry) {
	for i := range es {
		tv := es[i].tv
		tv.lock.Store(tv.lock.Load() &^ lockedBit)
	}
}

// shardHint spreads concurrent committers over clock shards. The
// attempt's own address is as good a hash as any: distinct live attempts
// have distinct addresses, and the pool tends to hand a goroutine the
// state it last used, so the shard choice is stable under steady load.
func (tx *tl2Tx) shardHint() uint64 {
	return poolHint(unsafe.Pointer(tx))
}

// abortCleanup: writes were buffered; nothing to roll back.
func (tx *tl2Tx) abortCleanup() {}

// conflictCleanup: nothing held between operations.
func (tx *tl2Tx) conflictCleanup() {}

func (tx *tl2Tx) wrote() bool { return tx.ws.len() > 0 }

// mark snapshots the buffered write set for OrElse: the entry count plus
// a copy of the prefix (an alternative may overwrite a pre-mark entry in
// place), appended to the attempt's pooled markBuf. An empty write set
// copies nothing and a warmed markBuf has capacity, so marking is
// allocation-free in steady state. Nested marks stack LIFO in markBuf;
// rollbackTo pops back to its own offset, which also invalidates every
// mark taken after it — exactly OrElse's bracket discipline (see
// txState.mark in engines.go).
func (tx *tl2Tx) mark() txMark {
	n := tx.ws.len()
	off := len(tx.markBuf)
	tx.markBuf = append(tx.markBuf, tx.ws.entries[:n]...)
	return txMark{n: n, off: off}
}

func (tx *tl2Tx) rollbackTo(m txMark) {
	tx.ws.truncate(m.n, tx.markBuf[m.off:m.off+m.n])
	clear(tx.markBuf[m.off:])
	tx.markBuf = tx.markBuf[:m.off]
}
