package stm

import (
	"runtime"
	"sort"
	"sync/atomic"
	"unsafe"
)

func init() {
	registerEngine(EngineTL2, "tl2",
		"speculative TL2: versioned locks, one global version clock (consistent, non-blocking, not DAP)",
		func() engine { return &tl2Engine{clock: &globalClock{}} })
}

// tl2Engine is speculative TL2 (Dice/Shalev/Shavit): reads are validated
// against a version clock, writes are buffered and published under
// short-lived versioned locks at commit. The clock implementation is the
// only difference between EngineTL2 (one global counter) and
// EngineTL2Striped (per-shard counters with lazy snapshot extension, see
// tl2striped.go).
type tl2Engine struct {
	clock versionClock
	// extend enables lazy snapshot extension: a read that observes a
	// version newer than rv re-snapshots the clock and revalidates the
	// read set instead of restarting outright. Off for classic TL2,
	// whose single clock makes stale snapshots rare; on for the striped
	// clock, whose reused timestamps make them common.
	extend bool
	// lockFails counts commit-time versioned-lock acquisitions that
	// exhausted their spin budget (see Stats.LockFails).
	lockFails atomic.Uint64
}

func (e *tl2Engine) lockFailCount() uint64 { return e.lockFails.Load() }

// tl2Tx is one TL2 transaction attempt: a read snapshot, a validated
// read set, and a buffered write set in first-write order.
type tl2Tx struct {
	eng    *tl2Engine
	rv     uint64
	reads  []readEntry
	writes map[*tvar]any
	worder []*tvar
}

type readEntry struct {
	tv  *tvar
	ver uint64
}

func (e *tl2Engine) begin(attempt int) txState {
	return &tl2Tx{eng: e, rv: e.clock.snapshot(), writes: make(map[*tvar]any)}
}

// load implements TL2's versioned read: a lock-stable value whose version
// does not postdate the transaction's read snapshot.
func (tx *tl2Tx) load(tv *tvar) any {
	if v, ok := tx.writes[tv]; ok {
		return v
	}
	for {
		l1 := tv.lock.Load()
		if isLocked(l1) {
			runtime.Gosched()
			continue
		}
		v := tv.val.Load()
		l2 := tv.lock.Load()
		if l1 != l2 {
			continue
		}
		if version(l1) > tx.rv {
			if !tx.eng.extend || !tx.extendSnapshot() {
				panic(conflict{}) // snapshot too old: restart with a fresh rv
			}
			continue // rv advanced past the version; re-read
		}
		tx.reads = append(tx.reads, readEntry{tv, version(l1)})
		return *v
	}
}

// extendSnapshot advances rv to the current clock if every read so far is
// still at its recorded version — TinySTM/LSA-style lazy extension. On
// success the attempt keeps running with the newer snapshot; on failure
// it is doomed and the caller restarts it.
func (tx *tl2Tx) extendSnapshot() bool {
	newRV := tx.eng.clock.snapshot()
	for _, r := range tx.reads {
		l := r.tv.lock.Load()
		if version(l) != r.ver || isLocked(l) {
			return false
		}
	}
	tx.rv = newRV
	return true
}

func (tx *tl2Tx) store(tv *tvar, v any) {
	if _, ok := tx.writes[tv]; !ok {
		tx.worder = append(tx.worder, tv)
	}
	tx.writes[tv] = v
}

// commit implements TL2's commit: lock the write set in id order, take a
// commit timestamp, validate the read set, publish, release.
func (tx *tl2Tx) commit() bool {
	if len(tx.worder) == 0 {
		// Read-only transactions validated every read against rv; done.
		return true
	}
	ws := make([]*tvar, len(tx.worder))
	copy(ws, tx.worder)
	sort.Slice(ws, func(i, j int) bool { return ws[i].id < ws[j].id })

	locked := ws[:0:0]
	releaseAll := func() {
		for _, tv := range locked {
			tv.lock.Store(tv.lock.Load() &^ lockedBit)
		}
	}
	for _, tv := range ws {
		acquired := false
		for spin := 0; spin < 64; spin++ {
			l := tv.lock.Load()
			if isLocked(l) {
				runtime.Gosched()
				continue
			}
			if tv.lock.CompareAndSwap(l, l|lockedBit) {
				acquired = true
				break
			}
		}
		if !acquired {
			tx.eng.lockFails.Add(1)
			releaseAll()
			return false
		}
		locked = append(locked, tv)
	}

	wv := tx.eng.clock.tick(tx.rv, tx.shardHint())

	inWrites := func(tv *tvar) bool { _, ok := tx.writes[tv]; return ok }
	for _, r := range tx.reads {
		l := r.tv.lock.Load()
		if version(l) != r.ver || (isLocked(l) && !inWrites(r.tv)) {
			releaseAll()
			return false
		}
	}

	for _, tv := range ws {
		v := tx.writes[tv]
		nv := v
		tv.val.Store(&nv)
		tv.lock.Store(wv) // publish new version and release
	}
	return true
}

// shardHint spreads concurrent committers over clock shards. The
// attempt's own address is as good a hash as any: distinct live attempts
// have distinct addresses, and an allocator slot tends to be reused by
// the same goroutine, so the shard choice is stable under steady load.
func (tx *tl2Tx) shardHint() uint64 {
	return uint64(uintptr(unsafe.Pointer(tx)) >> 6)
}

// abortCleanup: writes were buffered; nothing to roll back.
func (tx *tl2Tx) abortCleanup() {}

// conflictCleanup: nothing held between operations.
func (tx *tl2Tx) conflictCleanup() {}

func (tx *tl2Tx) wrote() bool { return len(tx.worder) > 0 }

// tl2Mark snapshots the buffered write set for OrElse.
type tl2Mark struct {
	worderLen int
	writes    map[*tvar]any
}

func (tx *tl2Tx) mark() txMark {
	m := tl2Mark{worderLen: len(tx.worder), writes: make(map[*tvar]any, len(tx.writes))}
	for tv, v := range tx.writes {
		m.writes[tv] = v
	}
	return m
}

func (tx *tl2Tx) rollbackTo(mk txMark) {
	m := mk.(tl2Mark)
	tx.worder = tx.worder[:m.worderLen]
	for tv := range tx.writes {
		if _, kept := m.writes[tv]; !kept {
			delete(tx.writes, tv)
		}
	}
	for tv, v := range m.writes {
		tx.writes[tv] = v
	}
}
