package stm

import (
	"sync"
	"testing"
)

func TestUpdateHelper(t *testing.T) {
	for _, e := range engines(t) {
		x := NewTVar[int](10)
		err := e.Atomically(func(tx *Tx) error {
			Update(tx, x, func(v int) int { return v * 3 })
			return nil
		})
		if err != nil || x.Peek() != 30 {
			t.Errorf("%v: update = %d, err %v", e.Kind(), x.Peek(), err)
		}
	}
}

func TestLoadStoreModify(t *testing.T) {
	for _, e := range engines(t) {
		x := NewTVar[string]("a")
		if Load(e, x) != "a" {
			t.Errorf("%v: load wrong", e.Kind())
		}
		Store(e, x, "b")
		if Load(e, x) != "b" {
			t.Errorf("%v: store lost", e.Kind())
		}
		got := Modify(e, x, func(s string) string { return s + "c" })
		if got != "bc" || Load(e, x) != "bc" {
			t.Errorf("%v: modify = %q / %q", e.Kind(), got, Load(e, x))
		}
	}
}

func TestModifyConcurrent(t *testing.T) {
	for _, e := range engines(t) {
		ctr := NewTVar[int](0)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 250; i++ {
					Modify(e, ctr, func(v int) int { return v + 1 })
				}
			}()
		}
		wg.Wait()
		if v := Load(e, ctr); v != 2000 {
			t.Errorf("%v: counter = %d, want 2000", e.Kind(), v)
		}
	}
}
