package stm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func engines(t *testing.T) []*Engine {
	t.Helper()
	var out []*Engine
	for _, k := range EngineKinds() {
		out = append(out, NewEngine(k))
	}
	return out
}

func TestEngineNames(t *testing.T) {
	for _, k := range EngineKinds() {
		name := k.String()
		got, ok := EngineByName(name)
		if !ok || got != k {
			t.Errorf("EngineByName(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := EngineByName("bogus"); ok {
		t.Errorf("EngineByName accepted bogus")
	}
}

func TestGetSetSingleThreaded(t *testing.T) {
	for _, e := range engines(t) {
		x := NewTVar[int](41)
		err := e.Atomically(func(tx *Tx) error {
			if v := Get(tx, x); v != 41 {
				t.Errorf("%v: initial get = %d", e.Kind(), v)
			}
			Set(tx, x, 42)
			if v := Get(tx, x); v != 42 {
				t.Errorf("%v: read-own-write = %d", e.Kind(), v)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", e.Kind(), err)
		}
		if v := x.Peek(); v != 42 {
			t.Errorf("%v: peek after commit = %d", e.Kind(), v)
		}
	}
}

func TestAbortRollsBack(t *testing.T) {
	boom := errors.New("boom")
	for _, e := range engines(t) {
		x := NewTVar[int](1)
		y := NewTVar[string]("keep")
		err := e.Atomically(func(tx *Tx) error {
			Set(tx, x, 99)
			Set(tx, y, "clobbered")
			return boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("%v: err = %v", e.Kind(), err)
		}
		if x.Peek() != 1 || y.Peek() != "keep" {
			t.Errorf("%v: abort leaked writes: x=%d y=%q", e.Kind(), x.Peek(), y.Peek())
		}
		if s := e.Stats(); s.Aborts != 1 {
			t.Errorf("%v: aborts = %d, want 1", e.Kind(), s.Aborts)
		}
	}
}

func TestConcurrentCounter(t *testing.T) {
	const goroutines = 8
	const perG = 500
	for _, e := range engines(t) {
		ctr := NewTVar[int](0)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					err := e.Atomically(func(tx *Tx) error {
						Set(tx, ctr, Get(tx, ctr)+1)
						return nil
					})
					if err != nil {
						t.Errorf("%v: %v", e.Kind(), err)
						return
					}
				}
			}()
		}
		wg.Wait()
		if v := ctr.Peek(); v != goroutines*perG {
			t.Errorf("%v: counter = %d, want %d (lost updates)", e.Kind(), v, goroutines*perG)
		}
		if s := e.Stats(); s.Commits != goroutines*perG {
			t.Errorf("%v: commits = %d, want %d", e.Kind(), s.Commits, goroutines*perG)
		}
	}
}

func TestBankInvariant(t *testing.T) {
	const accounts = 16
	const goroutines = 8
	const transfers = 400
	for _, e := range engines(t) {
		vars := make([]*TVar[int64], accounts)
		for i := range vars {
			vars[i] = NewTVar[int64](100)
		}
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(seed int) {
				defer wg.Done()
				for i := 0; i < transfers; i++ {
					from := (seed + i) % accounts
					to := (seed + i*7 + 1) % accounts
					if from == to {
						continue
					}
					err := e.Atomically(func(tx *Tx) error {
						f := Get(tx, vars[from])
						if f < 10 {
							return nil // insufficient funds; still commits harmlessly
						}
						Set(tx, vars[from], f-10)
						Set(tx, vars[to], Get(tx, vars[to])+10)
						return nil
					})
					if err != nil {
						t.Errorf("%v: %v", e.Kind(), err)
						return
					}
				}
			}(g * 3)
		}
		wg.Wait()
		var total int64
		err := e.Atomically(func(tx *Tx) error {
			total = 0
			for _, v := range vars {
				total += Get(tx, v)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if total != accounts*100 {
			t.Errorf("%v: total = %d, want %d (money leaked)", e.Kind(), total, accounts*100)
		}
	}
}

// TestNoWriteSkew: all three engines are serializable, so the classic SI
// anomaly must never commit: two transactions each read both variables
// and write one, under the constraint x + y ≤ 1.
func TestNoWriteSkew(t *testing.T) {
	const rounds = 300
	for _, e := range engines(t) {
		x := NewTVar[int](0)
		y := NewTVar[int](0)
		var wg sync.WaitGroup
		worker := func(mine *TVar[int]) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				_ = e.Atomically(func(tx *Tx) error {
					if Get(tx, x)+Get(tx, y) == 0 {
						Set(tx, mine, 1)
					}
					return nil
				})
				_ = e.Atomically(func(tx *Tx) error {
					Set(tx, mine, 0)
					return nil
				})
			}
		}
		wg.Add(2)
		go worker(x)
		go worker(y)

		violated := false
		for i := 0; i < rounds; i++ {
			_ = e.Atomically(func(tx *Tx) error {
				if Get(tx, x)+Get(tx, y) > 1 {
					violated = true
				}
				return nil
			})
		}
		wg.Wait()
		if Get0(e, x)+Get0(e, y) > 1 {
			violated = true
		}
		if violated {
			t.Errorf("%v: write skew observed (x+y > 1)", e.Kind())
		}
	}
}

// Get0 reads a TVar in its own transaction.
func Get0[T any](e *Engine, tv *TVar[T]) T {
	var out T
	_ = e.Atomically(func(tx *Tx) error {
		out = Get(tx, tv)
		return nil
	})
	return out
}

func TestRetriesCounted(t *testing.T) {
	e := NewEngine(EngineTL2)
	x := NewTVar[int](0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				_ = e.Atomically(func(tx *Tx) error {
					Set(tx, x, Get(tx, x)+1)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	// With 8 goroutines hammering one variable some retries are certain.
	if s := e.Stats(); s.Retries == 0 {
		t.Logf("tl2: no retries observed (timing-dependent, not a failure)")
	}
}

func TestUserPanicPropagatesAndUnlocks(t *testing.T) {
	for _, e := range engines(t) {
		x := NewTVar[int](5)
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Errorf("%v: panic swallowed", e.Kind())
				}
			}()
			_ = e.Atomically(func(tx *Tx) error {
				Set(tx, x, 6)
				panic("user panic")
			})
		}()
		// The engine must still be usable and the write rolled back (for
		// in-place engines).
		if e.Kind() != EngineTL2 && x.Peek() != 5 {
			t.Errorf("%v: panic leaked write: %d", e.Kind(), x.Peek())
		}
		if err := e.Atomically(func(tx *Tx) error { Set(tx, x, 7); return nil }); err != nil {
			t.Errorf("%v: engine unusable after panic: %v", e.Kind(), err)
		}
		if x.Peek() != 7 {
			t.Errorf("%v: post-panic commit lost", e.Kind())
		}
	}
}

func TestDisjointTransactionsAllEngines(t *testing.T) {
	// Disjoint variables: every engine must get them all right in
	// parallel.
	const n = 8
	for _, e := range engines(t) {
		vars := make([]*TVar[int], n)
		for i := range vars {
			vars[i] = NewTVar[int](0)
		}
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for j := 0; j < 200; j++ {
					_ = e.Atomically(func(tx *Tx) error {
						Set(tx, vars[i], Get(tx, vars[i])+1)
						return nil
					})
				}
			}(i)
		}
		wg.Wait()
		for i, v := range vars {
			if got := v.Peek(); got != 200 {
				t.Errorf("%v: var %d = %d, want 200", e.Kind(), i, got)
			}
		}
	}
}

func TestMultiTypeTVars(t *testing.T) {
	e := NewEngine(EngineTL2)
	s := NewTVar[string]("a")
	f := NewTVar[float64](1.5)
	pair := NewTVar[[2]int]([2]int{1, 2})
	err := e.Atomically(func(tx *Tx) error {
		Set(tx, s, Get(tx, s)+"b")
		Set(tx, f, Get(tx, f)*2)
		p := Get(tx, pair)
		p[0]++
		Set(tx, pair, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Peek() != "ab" || f.Peek() != 3.0 || pair.Peek() != [2]int{2, 2} {
		t.Errorf("typed vars wrong: %q %v %v", s.Peek(), f.Peek(), pair.Peek())
	}
}

func TestStatsString(t *testing.T) {
	e := NewEngine(EngineGlobalLock)
	_ = e.Atomically(func(tx *Tx) error { return nil })
	s := e.Stats()
	if s.Commits != 1 {
		t.Errorf("commits = %d", s.Commits)
	}
	if fmt.Sprintf("%v", e.Kind()) != "glock" {
		t.Errorf("kind string = %v", e.Kind())
	}
}
