package stm

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// Tests of the raw-word value plane (value.go): classification, exact
// round-trips of every kind through every engine's full value pipeline
// (Set → read-own-write Get → commit → Peek, abort → undo rollback,
// OrElse → mark rollback), and a seqlock stress over wide-value reads.

func TestClassify(t *testing.T) {
	type pair struct{ A, B uint64 }
	type triple struct{ A, B, C uint64 }
	type mixed struct {
		P *int
		N int
	}
	type mixedHi struct {
		N int
		P *int
	}
	type mixedSmall struct {
		P *int
		B uint16
	}
	type ptrOnly struct{ P *int }
	type twoPtr struct{ P, Q *int }
	type nestedMixed struct {
		Inner ptrOnly
		N     uint32
	}
	type small3 struct{ A, B, C uint8 }
	type int32x3 struct{ A, B, C int32 }
	cases := []struct {
		typ  reflect.Type
		want valueKind
	}{
		{reflect.TypeFor[int](), kindWord},
		{reflect.TypeFor[uint64](), kindWord},
		{reflect.TypeFor[float64](), kindWord},
		{reflect.TypeFor[bool](), kindWord},
		{reflect.TypeFor[int8](), kindWord},
		{reflect.TypeFor[small3](), kindWord},
		{reflect.TypeFor[struct{}](), kindWord},
		{reflect.TypeFor[[2]uint32](), kindWord},
		{reflect.TypeFor[complex128](), kindPair},
		{reflect.TypeFor[pair](), kindPair},
		{reflect.TypeFor[int32x3](), kindPair},
		{reflect.TypeFor[[4]uint32](), kindPair},
		{reflect.TypeFor[string](), kindString},
		{reflect.TypeFor[*int](), kindPointer},
		{reflect.TypeFor[map[string]int](), kindPointer},
		{reflect.TypeFor[chan int](), kindPointer},
		{reflect.TypeFor[func()](), kindPointer},
		{reflect.TypeFor[mixed](), kindPtrLo},
		{reflect.TypeFor[mixedHi](), kindPtrHi},
		{reflect.TypeFor[mixedSmall](), kindPtrLo},
		{reflect.TypeFor[nestedMixed](), kindPtrLo},
		{reflect.TypeFor[ptrOnly](), kindPointer},
		{reflect.TypeFor[[1]*int](), kindPointer},
		{reflect.TypeFor[any](), kindBoxed},
		{reflect.TypeFor[error](), kindBoxed},
		{reflect.TypeFor[[]int](), kindBoxed},
		{reflect.TypeFor[twoPtr](), kindBoxed},
		{reflect.TypeFor[struct{ S string }](), kindBoxed},
		{reflect.TypeFor[struct {
			P *int
			N uint64
			M uint64
		}](), kindBoxed},
		{reflect.TypeFor[triple](), kindBoxed},
		{reflect.TypeFor[[3]string](), kindBoxed},
	}
	for _, c := range cases {
		if got := classify(c.typ); got != c.want {
			t.Errorf("classify(%v) = %v, want %v", c.typ, got, c.want)
		}
	}
}

var errAbortRT = errors.New("value round-trip: deliberate abort")

// checkRoundTrip drives values of one kind through every engine: write
// and read-own-write inside a transaction, an OrElse alternative that
// overwrites and is rolled back, a committed value visible to Peek, and
// an aborted write undone by the undo log (in-place engines) or dropped
// with the write set (speculative engines).
func checkRoundTrip[T comparable](t *testing.T, name string, wantKind valueKind, mk func(seed int64) T) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		if k := classify(reflect.TypeFor[T]()); k != wantKind {
			t.Fatalf("classify = %v, want %v", k, wantKind)
		}
		for _, e := range engines(t) {
			e := e
			x := NewTVar[T](mk(0))
			prop := func(s1, s2 int64) bool {
				v1, v2 := mk(s1), mk(s2)
				ok := true
				if err := e.Atomically(func(tx *Tx) error {
					Set(tx, x, v1)
					ok = ok && Get(tx, x) == v1 // read own write
					return OrElse(tx,
						func(tx *Tx) error {
							Set(tx, x, v2) // overwrite, then abandon
							Retry(tx)
							return nil
						},
						func(tx *Tx) error {
							ok = ok && Get(tx, x) == v1 // mark rollback restored v1
							Set(tx, x, v2)
							ok = ok && Get(tx, x) == v2
							return nil
						})
				}); err != nil {
					return false
				}
				if !ok || x.Peek() != v2 {
					return false
				}
				// Aborted writes are rolled back wholesale.
				if err := e.Atomically(func(tx *Tx) error {
					Set(tx, x, v1)
					return errAbortRT
				}); err != errAbortRT {
					return false
				}
				return x.Peek() == v2
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
				t.Errorf("%s: %v", e.Kind(), err)
			}
		}
	})
}

func TestValueRoundTrips(t *testing.T) {
	type pair struct{ A, B uint64 }
	type int32x3 struct{ A, B, C int32 }
	ptrs := [8]*int{}
	for i := range ptrs {
		ptrs[i] = new(int)
	}
	checkRoundTrip(t, "int", kindWord, func(s int64) int { return int(s) })
	checkRoundTrip(t, "uint64", kindWord, func(s int64) uint64 { return uint64(s) * 0x9E3779B97F4A7C15 })
	checkRoundTrip(t, "float64", kindWord, func(s int64) float64 { return float64(s) * math.Pi })
	checkRoundTrip(t, "bool", kindWord, func(s int64) bool { return s&1 == 0 })
	checkRoundTrip(t, "int8", kindWord, func(s int64) int8 { return int8(s) })
	checkRoundTrip(t, "string", kindString, func(s int64) string { return fmt.Sprintf("str-%d", s) })
	checkRoundTrip(t, "pointer", kindPointer, func(s int64) *int { return ptrs[uint64(s)%8] })
	checkRoundTrip(t, "pair-struct", kindPair, func(s int64) pair {
		return pair{A: uint64(s), B: ^uint64(s)}
	})
	checkRoundTrip(t, "odd-pair-struct", kindPair, func(s int64) int32x3 {
		return int32x3{A: int32(s), B: int32(s >> 16), C: int32(s >> 32)}
	})
	checkRoundTrip(t, "complex128", kindPair, func(s int64) complex128 {
		return complex(float64(s), -float64(s))
	})
	type ptrInt struct {
		P *int
		N int64
	}
	type intPtr struct {
		N int64
		P *int
	}
	type ptrSmall struct {
		P *int
		B uint16
	}
	checkRoundTrip(t, "ptr-lo-struct", kindPtrLo, func(s int64) ptrInt {
		return ptrInt{P: ptrs[uint64(s)%8], N: s}
	})
	checkRoundTrip(t, "ptr-hi-struct", kindPtrHi, func(s int64) intPtr {
		return intPtr{N: ^s, P: ptrs[uint64(s+3)%8]}
	})
	checkRoundTrip(t, "ptr-small-scalar-struct", kindPtrLo, func(s int64) ptrSmall {
		return ptrSmall{P: ptrs[uint64(s)%8], B: uint16(s)}
	})
	checkRoundTrip(t, "single-ptr-struct", kindPointer, func(s int64) struct{ P *int } {
		return struct{ P *int }{P: ptrs[uint64(s)%8]}
	})
	checkRoundTrip(t, "interface-fallback", kindBoxed, func(s int64) any { return s })
	checkRoundTrip(t, "slice-fallback", kindBoxed, func(s int64) [3]string {
		return [3]string{fmt.Sprint(s), "mid", fmt.Sprint(-s)}
	})
}

// TestWideValueSeqlockStress hammers wide (multi-word) variables with
// in-place and commit-time publishes while unsynchronized readers Peek,
// asserting no reader ever observes a torn value. The pair variable's
// invariant is B == ^A (any mix of two publishes breaks it); the string
// variable's values are distinct-length windows of one backing array, so
// even a torn data-pointer/length pair stays in bounds and is caught by
// set membership. Run under -race this also drives checkptr over every
// unsafe conversion in the word plane.
func TestWideValueSeqlockStress(t *testing.T) {
	type pair struct{ A, B uint64 }
	const base = "abcdefghijklmnopqrstuvwxyz0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	strs := make([]string, 16)
	legal := make(map[string]bool, len(strs))
	for i := range strs {
		strs[i] = base[i : i+4+i%8] // distinct offsets and lengths, one backing array
		legal[strs[i]] = true
	}
	dur := 80 * time.Millisecond
	if testing.Short() {
		dur = 20 * time.Millisecond
	}
	for _, kind := range EngineKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			type mixed struct {
				P *uint64
				N uint64
			}
			mkMixed := func(i uint64) mixed {
				p := new(uint64)
				*p = i
				return mixed{P: p, N: i}
			}
			e := NewEngine(kind)
			xp := NewTVar[pair](pair{0, ^uint64(0)})
			xs := NewTVar[string](strs[0])
			xm := NewTVar[mixed](mkMixed(0))
			stop := make(chan struct{})
			var torn sync.Map
			var wg sync.WaitGroup
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					i := uint64(w)
					for {
						select {
						case <-stop:
							return
						default:
						}
						i++
						m := mkMixed(i)
						_ = e.Atomically(func(tx *Tx) error {
							Set(tx, xp, pair{A: i, B: ^i})
							Set(tx, xs, strs[i%uint64(len(strs))])
							Set(tx, xm, m)
							return nil
						})
					}
				}(w)
			}
			for r := 0; r < 2; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						if p := xp.Peek(); p.B != ^p.A {
							torn.Store(fmt.Sprintf("pair A=%d B=%d", p.A, p.B), true)
						}
						if s := xs.Peek(); !legal[s] {
							torn.Store(fmt.Sprintf("string %q", s), true)
						}
						if m := xm.Peek(); *m.P != m.N {
							torn.Store(fmt.Sprintf("mixed *P=%d N=%d", *m.P, m.N), true)
						}
					}
				}(r)
			}
			time.Sleep(dur)
			close(stop)
			wg.Wait()
			torn.Range(func(k, _ any) bool {
				t.Errorf("%s: torn wide read observed: %s", kind, k)
				return true
			})
		})
	}
}
