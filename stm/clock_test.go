package stm

import (
	"sync"
	"testing"
)

// clocks returns one of each versionClock implementation.
func clocks() map[string]versionClock {
	return map[string]versionClock{
		"global":  &globalClock{},
		"striped": newStripedClock(),
	}
}

func TestClockTickExceedsRV(t *testing.T) {
	for name, c := range clocks() {
		rv := c.snapshot()
		for i := uint64(0); i < 100; i++ {
			wv := c.tick(rv, i)
			if wv <= rv {
				t.Fatalf("%s: tick(rv=%d) = %d, want > rv", name, rv, wv)
			}
			rv = c.snapshot()
		}
	}
}

func TestClockSnapshotCoversCompletedTicks(t *testing.T) {
	for name, c := range clocks() {
		for hint := uint64(0); hint < 2*maxClockShards; hint++ {
			wv := c.tick(c.snapshot(), hint)
			if s := c.snapshot(); s < wv {
				t.Fatalf("%s: snapshot = %d after tick returned %d", name, s, wv)
			}
		}
	}
}

func TestStripedClockSpreadsShards(t *testing.T) {
	// A fixed 8-shard clock, independent of GOMAXPROCS.
	c := &stripedClock{shards: make([]paddedUint64, 8), mask: 7}
	for hint := uint64(0); hint < 8; hint++ {
		c.tick(0, hint)
	}
	for i := range c.shards {
		if c.shards[i].v.Load() == 0 {
			t.Errorf("shard %d untouched by tick with its hint", i)
		}
	}
}

// TestStripedTickExceedsPriorSnapshots pins versionClock invariant 3: a
// tick must beat every snapshot that completed before it began, even
// when that snapshot's max came from a different shard than the tick's
// and the committer's rv is stale. (Without this, a reader whose rv was
// raised by shard B could accept a version just published through shard
// A at a timestamp ≤ rv — a torn snapshot.)
func TestStripedTickExceedsPriorSnapshots(t *testing.T) {
	c := &stripedClock{shards: make([]paddedUint64, 2), mask: 1}
	c.shards[1].v.Store(5)
	s := c.snapshot() // 5, via shard 1
	if wv := c.tick(0, 0); wv <= s {
		t.Fatalf("tick on shard 0 = %d, want > prior snapshot %d", wv, s)
	}
}

func TestStripedClockSizing(t *testing.T) {
	c := newStripedClock()
	n := len(c.shards)
	if n < 1 || n > maxClockShards || n&(n-1) != 0 {
		t.Errorf("shard count %d: want a power of two in [1, %d]", n, maxClockShards)
	}
	if c.mask != uint64(n-1) {
		t.Errorf("mask %d does not match %d shards", c.mask, n)
	}
}

func TestClockConcurrentMonotonic(t *testing.T) {
	for name, c := range clocks() {
		const goroutines = 8
		const ticks = 2000
		var wg sync.WaitGroup
		errs := make(chan string, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(hint uint64) {
				defer wg.Done()
				for i := 0; i < ticks; i++ {
					rv := c.snapshot()
					wv := c.tick(rv, hint)
					if wv <= rv {
						errs <- name + ": tick not past rv"
						return
					}
					// The snapshot-covers-tick invariant, raced.
					if s := c.snapshot(); s < wv {
						errs <- name + ": snapshot behind own tick"
						return
					}
				}
			}(uint64(g))
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Error(e)
		}
	}
}
