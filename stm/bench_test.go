package stm

import (
	"fmt"
	"testing"
)

// BenchmarkReadOnly measures transactional read cost per engine.
func BenchmarkReadOnly(b *testing.B) {
	for _, kind := range EngineKinds() {
		b.Run(kind.String(), func(b *testing.B) {
			e := NewEngine(kind)
			x := NewTVar[int](1)
			y := NewTVar[int](2)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = e.Atomically(func(tx *Tx) error {
					_ = Get(tx, x) + Get(tx, y)
					return nil
				})
			}
		})
	}
}

// BenchmarkReadModifyWrite measures the classic counter transaction.
func BenchmarkReadModifyWrite(b *testing.B) {
	for _, kind := range EngineKinds() {
		b.Run(kind.String(), func(b *testing.B) {
			e := NewEngine(kind)
			x := NewTVar[int](0)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = e.Atomically(func(tx *Tx) error {
					Set(tx, x, Get(tx, x)+1)
					return nil
				})
			}
		})
	}
}

// BenchmarkCommitWriteSetSize ablates commit cost against write-set size
// (TL2 locks and validates per variable; 2PL holds per-variable locks;
// the global lock is size-oblivious).
func BenchmarkCommitWriteSetSize(b *testing.B) {
	for _, kind := range EngineKinds() {
		for _, size := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("%s/writes=%d", kind, size), func(b *testing.B) {
				e := NewEngine(kind)
				vars := make([]*TVar[int], size)
				for i := range vars {
					vars[i] = NewTVar[int](0)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_ = e.Atomically(func(tx *Tx) error {
						for _, tv := range vars {
							Set(tx, tv, i)
						}
						return nil
					})
				}
			})
		}
	}
}

// BenchmarkPeek measures the non-transactional fast path.
func BenchmarkPeek(b *testing.B) {
	x := NewTVar[int](7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if x.Peek() != 7 {
			b.Fatal("peek broken")
		}
	}
}

// BenchmarkContendedCounter measures retry behavior under parallel
// hammering of one variable.
func BenchmarkContendedCounter(b *testing.B) {
	for _, kind := range EngineKinds() {
		b.Run(kind.String(), func(b *testing.B) {
			e := NewEngine(kind)
			x := NewTVar[int64](0)
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					_ = e.Atomically(func(tx *Tx) error {
						Set(tx, x, Get(tx, x)+1)
						return nil
					})
				}
			})
			b.StopTimer()
			st := e.Stats()
			if st.Commits > 0 {
				b.ReportMetric(float64(st.Retries)/float64(st.Commits), "retries/commit")
			}
		})
	}
}
