package stm

import (
	"runtime"
	"sort"
	"time"
)

// backoff sleeps progressively longer on repeated restarts of a
// lock-based transaction, defusing livelock between symmetric retriers.
func backoff(attempt int) {
	switch {
	case attempt == 0:
	case attempt < 4:
		runtime.Gosched()
	default:
		d := time.Duration(attempt)
		if d > 64 {
			d = 64
		}
		time.Sleep(d * time.Microsecond)
	}
}

// load dispatches a transactional read to the engine.
func (tx *Tx) load(tv *tvar) any {
	switch tx.eng.kind {
	case EngineTL2:
		return tx.tl2Load(tv)
	case EngineTwoPL:
		tx.twoPLAcquire(tv)
		return *tv.val.Load()
	default: // EngineGlobalLock
		return *tv.val.Load()
	}
}

// store dispatches a transactional write to the engine.
func (tx *Tx) store(tv *tvar, v any) {
	switch tx.eng.kind {
	case EngineTL2:
		if _, ok := tx.writes[tv]; !ok {
			tx.worder = append(tx.worder, tv)
		}
		tx.writes[tv] = v
	case EngineTwoPL:
		tx.twoPLAcquire(tv)
		tx.pushUndo(tv)
		nv := v
		tv.val.Store(&nv)
	default: // EngineGlobalLock
		tx.pushUndo(tv)
		nv := v
		tv.val.Store(&nv)
	}
}

// commit dispatches commit; false means conflict (retry).
func (tx *Tx) commit() bool {
	switch tx.eng.kind {
	case EngineTL2:
		return tx.tl2Commit()
	case EngineTwoPL:
		tx.releaseLocks()
		return true
	default: // EngineGlobalLock
		tx.eng.global.Unlock()
		return true
	}
}

// cleanupAfterAbort rolls back a user-error abort.
func (tx *Tx) cleanupAfterAbort() {
	switch tx.eng.kind {
	case EngineTL2:
		// Writes were buffered; nothing to roll back.
	case EngineTwoPL:
		tx.rollbackUndo()
		tx.releaseLocks()
	default:
		tx.rollbackUndo()
		tx.eng.global.Unlock()
	}
}

// cleanupAfterConflict unwinds an internal retry.
func (tx *Tx) cleanupAfterConflict() {
	switch tx.eng.kind {
	case EngineTwoPL:
		tx.rollbackUndo()
		tx.releaseLocks()
	case EngineGlobalLock:
		// The global engine never conflicts, but keep the lock balanced
		// if it ever does.
		tx.rollbackUndo()
		tx.eng.global.Unlock()
	}
}

func (tx *Tx) pushUndo(tv *tvar) {
	tx.undo = append(tx.undo, undoEntry{tv: tv, prev: tv.val.Load()})
}

func (tx *Tx) rollbackUndo() {
	for i := len(tx.undo) - 1; i >= 0; i-- {
		tx.undo[i].tv.val.Store(tx.undo[i].prev)
	}
	tx.undo = tx.undo[:0]
}

// ---- TL2 ----

// tl2Load implements TL2's versioned read: a lock-stable value whose
// version does not postdate the transaction's read snapshot.
func (tx *Tx) tl2Load(tv *tvar) any {
	if v, ok := tx.writes[tv]; ok {
		return v
	}
	for {
		l1 := tv.lock.Load()
		if isLocked(l1) {
			runtime.Gosched()
			continue
		}
		v := tv.val.Load()
		l2 := tv.lock.Load()
		if l1 != l2 {
			continue
		}
		if version(l1) > tx.rv {
			panic(conflict{}) // snapshot too old: restart with a fresh rv
		}
		tx.reads = append(tx.reads, readEntry{tv, version(l1)})
		return *v
	}
}

// tl2Commit implements TL2's commit: lock the write set in id order,
// bump the clock, validate the read set, publish, release.
func (tx *Tx) tl2Commit() bool {
	if len(tx.worder) == 0 {
		// Read-only transactions validated every read against rv; done.
		return true
	}
	ws := make([]*tvar, len(tx.worder))
	copy(ws, tx.worder)
	sort.Slice(ws, func(i, j int) bool { return ws[i].id < ws[j].id })

	locked := ws[:0:0]
	releaseAll := func() {
		for _, tv := range locked {
			tv.lock.Store(tv.lock.Load() &^ lockedBit)
		}
	}
	for _, tv := range ws {
		acquired := false
		for spin := 0; spin < 64; spin++ {
			l := tv.lock.Load()
			if isLocked(l) {
				runtime.Gosched()
				continue
			}
			if tv.lock.CompareAndSwap(l, l|lockedBit) {
				acquired = true
				break
			}
		}
		if !acquired {
			releaseAll()
			return false
		}
		locked = append(locked, tv)
	}

	wv := tx.eng.clock.Add(1)

	inWrites := func(tv *tvar) bool { _, ok := tx.writes[tv]; return ok }
	for _, r := range tx.reads {
		l := r.tv.lock.Load()
		if version(l) != r.ver || (isLocked(l) && !inWrites(r.tv)) {
			releaseAll()
			return false
		}
	}

	for _, tv := range ws {
		v := tx.writes[tv]
		nv := v
		tv.val.Store(&nv)
		tv.lock.Store(wv) // publish new version and release
	}
	return true
}

// ---- TwoPL ----

// twoPLAcquire try-locks the variable at first access; failure restarts
// the whole transaction (deadlock avoidance by abort).
func (tx *Tx) twoPLAcquire(tv *tvar) {
	if tx.locked[tv] {
		return
	}
	if !tv.mu.TryLock() {
		panic(conflict{})
	}
	tx.locked[tv] = true
	tx.lorder = append(tx.lorder, tv)
}

func (tx *Tx) releaseLocks() {
	for i := len(tx.lorder) - 1; i >= 0; i-- {
		tx.lorder[i].mu.Unlock()
	}
	tx.lorder = tx.lorder[:0]
	for tv := range tx.locked {
		delete(tx.locked, tv)
	}
}
