// The engine seam: every concurrency-control algorithm in this package
// plugs in behind the engine/txState pair below and registers itself in
// the engine table. The public API (stm.go, orelse.go, retry.go) only
// ever talks to these interfaces — adding an engine means adding a file,
// not editing dispatch sites.
package stm

import (
	"runtime"
	"time"
)

// engine is one concurrency-control algorithm behind an Engine: a factory
// for per-attempt transaction state. An implementation owns whatever
// engine-wide shared state its algorithm needs (version clocks, the
// global mutex) and is constructed once per Engine by its registered
// constructor.
type engine interface {
	// begin starts one transaction attempt. attempt counts restarts of
	// the same Atomically call, so implementations can back off. In
	// steady state the returned state comes from the engine's pool, so a
	// conflict retry reuses the previous attempt's storage.
	begin(attempt int) txState
	// done hands a finished attempt's state back for reuse. The caller
	// guarantees cleanup has run (locks released, writes rolled back or
	// published) and that it will not touch st again; implementations
	// reset the state and return it to their pool.
	done(st txState)
}

// txState is the engine-specific state of one transaction attempt. The
// public Tx handle delegates every operation here; each engine keeps only
// the fields its algorithm needs instead of a union of all engines'
// fields.
type txState interface {
	// load performs a transactional read, returning the value in
	// raw-word form (value.go); the public API decodes it back to T.
	load(tv *tvar) vword
	// store performs a transactional write of an encoded value.
	store(tv *tvar, w vword)
	// commit publishes the attempt's writes; false means a conflict was
	// detected and the attempt must restart.
	commit() bool
	// abortCleanup rolls back after a user error or user panic.
	abortCleanup()
	// conflictCleanup unwinds an internal restart (conflict or Retry),
	// releasing anything held so other transactions can proceed.
	conflictCleanup()
	// wrote reports whether the committed attempt published any write
	// (drives Retry wakeups).
	wrote() bool
	// mark snapshots the attempt's write state and rollbackTo undoes all
	// writes performed after the mark — the bracket around an OrElse
	// alternative. Locks acquired since the mark are deliberately kept
	// (conservative and deadlock-free: they are released when the
	// transaction finishes either way), as are read-set entries (extra
	// validation can only make commit more conservative). A mark may
	// reference scratch storage pooled inside the attempt state (tl2's
	// markBuf), so it is valid only within the attempt that took it and
	// only in LIFO order — exactly the shape of OrElse's bracket, which
	// takes, uses and abandons marks strictly nested inside one attempt.
	mark() txMark
	rollbackTo(m txMark)
	// reset truncates the attempt's collections (read set, write set,
	// undo log, lock set) for reuse by a later attempt, zeroing dropped
	// references so pooled state pins nothing. Called by the engine's
	// done before pooling; leaking any entry across reset is the classic
	// pooling bug the conformance harness convicts (see
	// NewLeakyPoolEngineForTest).
	reset()
}

// txMark is an engine-specific snapshot of a transaction's write state;
// see txState.mark. It is a small concrete struct passed by value — an
// interface here would box the mark on every OrElse, the one allocation
// the bracket used to pay even when nothing had been written. n is the
// undo-log or write-set length at the mark; off is the engine's offset
// into its pooled mark scratch (unused by the in-place engines).
type txMark struct {
	n, off int
}

// lockFailCounter is the optional engine interface behind
// Stats.LockFails: engines that can fail a lock acquisition (2PL's
// encounter-time try-locks, TL2's commit-time versioned locks) expose a
// cumulative count of those failures. The adaptive engine samples the
// counter's deltas as its contention signal.
type lockFailCounter interface {
	lockFailCount() uint64
}

// retryCleaner is the optional txState interface distinguishing an
// explicit Retry unwind from a conflict: engines that sample their own
// conflict rate implement it so a blocked waiter doesn't read as
// contention. Atomically falls back to conflictCleanup when absent —
// the two paths must release the same resources.
type retryCleaner interface {
	retryCleanup()
}

// engineEntry is one row of the engine registry.
type engineEntry struct {
	name string
	doc  string
	make func() engine
}

// engineTable maps EngineKind to its registration, filled in by each
// engine file's init. EngineKinds, EngineByName and NewEngine all read
// this table, so the engine files are the single source of truth.
var engineTable [engineKindCount]engineEntry

// registerEngine is called from each engine file's init.
func registerEngine(kind EngineKind, name, doc string, make func() engine) {
	if kind < 0 || kind >= engineKindCount {
		panic("stm: registerEngine: kind out of range")
	}
	if engineTable[kind].make != nil {
		panic("stm: registerEngine: duplicate registration for " + name)
	}
	for _, e := range engineTable {
		if e.make != nil && e.name == name {
			panic("stm: registerEngine: duplicate engine name " + name)
		}
	}
	engineTable[kind] = engineEntry{name: name, doc: doc, make: make}
}

// backoff sleeps progressively longer on repeated restarts of a
// lock-based transaction, defusing livelock between symmetric retriers.
func backoff(attempt int) {
	switch {
	case attempt == 0:
	case attempt < 4:
		runtime.Gosched()
	default:
		d := time.Duration(attempt)
		if d > 64 {
			d = 64
		}
		time.Sleep(d * time.Microsecond)
	}
}

// undoEntry is one in-place write to roll back, with the overwritten
// value in raw-word form — buffering it allocates nothing, and the
// vword's pointer slot keeps boxed or string payloads alive for the GC.
type undoEntry struct {
	tv   *tvar
	prev vword
}

// undoLog records in-place writes for the lock-based engines, newest
// last. It lives in pooled attempt state: reset keeps the backing array
// and zeroes the entries.
type undoLog []undoEntry

// push records tv's current value before it is overwritten. Every
// caller holds the variable's write authority (orec, global mutex), so
// the bare loadWords is a consistent snapshot — no seqlock validation.
func (u *undoLog) push(tv *tvar) {
	*u = append(*u, undoEntry{tv: tv, prev: tv.loadWords()})
}

// rollbackTo restores everything written after the log had n entries.
func (u *undoLog) rollbackTo(n int) {
	log := *u
	for i := len(log) - 1; i >= n; i-- {
		log[i].tv.publish(log[i].prev)
		log[i] = undoEntry{}
	}
	*u = log[:n]
}

// rollback restores everything.
func (u *undoLog) rollback() { u.rollbackTo(0) }

// reset empties the log for reuse.
func (u *undoLog) reset() {
	clear(*u)
	*u = (*u)[:0]
}
