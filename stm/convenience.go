package stm

// Update applies fn to the variable's value inside a transaction.
func Update[T any](tx *Tx, tv *TVar[T], fn func(T) T) {
	Set(tx, tv, fn(Get(tx, tv)))
}

// Load reads a single variable in its own transaction on the given
// engine. For multi-variable invariants use Atomically.
func Load[T any](e *Engine, tv *TVar[T]) T {
	var out T
	_ = e.Atomically(func(tx *Tx) error {
		out = Get(tx, tv)
		return nil
	})
	return out
}

// Store writes a single variable in its own transaction.
func Store[T any](e *Engine, tv *TVar[T], v T) {
	_ = e.Atomically(func(tx *Tx) error {
		Set(tx, tv, v)
		return nil
	})
}

// Modify applies fn to a single variable in its own transaction and
// returns the new value.
func Modify[T any](e *Engine, tv *TVar[T], fn func(T) T) T {
	var out T
	_ = e.Atomically(func(tx *Tx) error {
		out = fn(Get(tx, tv))
		Set(tx, tv, out)
		return nil
	})
	return out
}
