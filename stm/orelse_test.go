package stm

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestOrElseTakesFirstWhenAvailable(t *testing.T) {
	for _, e := range engines(t) {
		fast := NewTVar[int](42)
		slow := NewTVar[int](7)
		var got int
		err := e.Atomically(func(tx *Tx) error {
			return OrElse(tx,
				func(tx *Tx) error {
					v := Get(tx, fast)
					if v == 0 {
						Retry(tx)
					}
					got = v
					Set(tx, fast, 0)
					return nil
				},
				func(tx *Tx) error {
					got = Get(tx, slow)
					Set(tx, slow, 0)
					return nil
				},
			)
		})
		if err != nil || got != 42 {
			t.Errorf("%v: got %d err %v, want 42", e.Kind(), got, err)
		}
		if fast.Peek() != 0 || slow.Peek() != 7 {
			t.Errorf("%v: wrong variable consumed: fast=%d slow=%d", e.Kind(), fast.Peek(), slow.Peek())
		}
	}
}

func TestOrElseFallsBackAndRollsBack(t *testing.T) {
	for _, e := range engines(t) {
		fast := NewTVar[int](0) // empty: first alternative retries
		slow := NewTVar[int](7)
		scratch := NewTVar[int](0)
		var got int
		err := e.Atomically(func(tx *Tx) error {
			return OrElse(tx,
				func(tx *Tx) error {
					Set(tx, scratch, 99) // must be rolled back
					if Get(tx, fast) == 0 {
						Retry(tx)
					}
					got = Get(tx, fast)
					return nil
				},
				func(tx *Tx) error {
					got = Get(tx, slow)
					Set(tx, slow, 0)
					return nil
				},
			)
		})
		if err != nil || got != 7 {
			t.Errorf("%v: got %d err %v, want 7", e.Kind(), got, err)
		}
		if scratch.Peek() != 0 {
			t.Errorf("%v: abandoned alternative's write leaked: scratch=%d", e.Kind(), scratch.Peek())
		}
		if slow.Peek() != 0 {
			t.Errorf("%v: fallback write lost", e.Kind())
		}
	}
}

func TestOrElseBothRetryBlocksUntilChange(t *testing.T) {
	for _, e := range engines(t) {
		a := NewTVar[int](0)
		b := NewTVar[int](0)
		got := make(chan int, 1)
		go func() {
			var v int
			_ = e.Atomically(func(tx *Tx) error {
				return OrElse(tx,
					func(tx *Tx) error {
						if Get(tx, a) == 0 {
							Retry(tx)
						}
						v = Get(tx, a)
						return nil
					},
					func(tx *Tx) error {
						if Get(tx, b) == 0 {
							Retry(tx)
						}
						v = Get(tx, b) * 10
						return nil
					},
				)
			})
			got <- v
		}()
		time.Sleep(5 * time.Millisecond)
		Store(e, b, 3)
		select {
		case v := <-got:
			if v != 30 {
				t.Errorf("%v: got %d, want 30 (second alternative)", e.Kind(), v)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%v: OrElse never woke up", e.Kind())
		}
	}
}

func TestOrElseErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	for _, e := range engines(t) {
		x := NewTVar[int](1)
		err := e.Atomically(func(tx *Tx) error {
			return OrElse(tx,
				func(tx *Tx) error {
					Set(tx, x, 5)
					return boom
				},
				func(tx *Tx) error {
					t.Errorf("%v: fallback ran after an error", e.Kind())
					return nil
				},
			)
		})
		if !errors.Is(err, boom) {
			t.Errorf("%v: err = %v", e.Kind(), err)
		}
		if x.Peek() != 1 {
			t.Errorf("%v: aborted write leaked", e.Kind())
		}
	}
}

func TestOrElseNested(t *testing.T) {
	e := NewEngine(EngineTL2)
	q1 := NewTVar[int](0)
	q2 := NewTVar[int](0)
	q3 := NewTVar[int](9)
	var got int
	take := func(tv *TVar[int], mul int) func(*Tx) error {
		return func(tx *Tx) error {
			v := Get(tx, tv)
			if v == 0 {
				Retry(tx)
			}
			got = v * mul
			return nil
		}
	}
	err := e.Atomically(func(tx *Tx) error {
		return OrElse(tx,
			take(q1, 1),
			func(tx *Tx) error {
				return OrElse(tx, take(q2, 10), take(q3, 100))
			},
		)
	})
	if err != nil || got != 900 {
		t.Errorf("nested OrElse: got %d err %v, want 900", got, err)
	}
}

func TestOrElseUnderConcurrency(t *testing.T) {
	// Two sources, many consumers; every produced item consumed once.
	e := NewEngine(EngineTL2)
	src1 := NewTVar[[]int](nil)
	src2 := NewTVar[[]int](nil)
	const items = 100

	pop := func(tv *TVar[[]int]) func(*Tx) error {
		return func(tx *Tx) error {
			q := Get(tx, tv)
			if len(q) == 0 {
				Retry(tx)
			}
			Set(tx, tv, append([]int(nil), q[1:]...))
			return nil
		}
	}

	var consumed sync.WaitGroup
	consumed.Add(2 * items)
	for c := 0; c < 4; c++ {
		go func() {
			for {
				err := e.Atomically(func(tx *Tx) error {
					return OrElse(tx, pop(src1), pop(src2))
				})
				if err == nil {
					consumed.Done()
				}
			}
		}()
	}
	for i := 0; i < items; i++ {
		_ = e.Atomically(func(tx *Tx) error {
			Set(tx, src1, append(Get(tx, src1), i))
			Set(tx, src2, append(Get(tx, src2), i))
			return nil
		})
	}
	done := make(chan struct{})
	go func() { consumed.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("consumers stalled")
	}
	if len(Load(e, src1)) != 0 || len(Load(e, src2)) != 0 {
		t.Errorf("queues not drained")
	}
}
