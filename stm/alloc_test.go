package stm

import (
	"testing"
)

// The allocation regression gate: the package doc's zero-steady-state-
// allocation contract, pinned per engine with testing.AllocsPerRun so it
// cannot silently rot. Each case warms the pools first (the first
// attempts allocate their state, slices and pool internals), then
// measures a steady-state transaction.
//
// Since the raw-word value representation (value.go), the contract
// covers the values themselves, not just the machinery: strings,
// floats, large integers and pointer-free structs up to two words cross
// Set/Get without boxing, so the gates below pin those at zero too. The
// one remaining exemption is the boxed fallback (interface-kind TVars
// and types the words cannot carry), which allocates its box per Set by
// design.

// allocBudget is the steady-state allocs/op each engine is allowed.
// glock/twopl/tl2/tl2s owe exactly zero; adaptive gets a small fixed
// budget for the rare amortized paths its delegation layer may hit
// (window close, pool rebalancing across the wrapper and delegate
// pools).
func allocBudget(kind EngineKind) float64 {
	if kind == EngineAdaptive {
		return 0.5
	}
	return 0
}

const allocWarmup = 200

func measureAllocs(t *testing.T, e *Engine, fn func(tx *Tx) error) float64 {
	t.Helper()
	if raceEnabled {
		t.Skip("race detector randomizes sync.Pool reuse; alloc counts are gated in the non-race CI step")
	}
	for i := 0; i < allocWarmup; i++ {
		if err := e.Atomically(fn); err != nil {
			t.Fatal(err)
		}
	}
	return testing.AllocsPerRun(200, func() {
		if err := e.Atomically(fn); err != nil {
			t.Fatal(err)
		}
	})
}

// TestZeroAllocTwoWriteTx: a warmed read-modify-write transaction over
// two variables — two Gets, two Sets, commit — allocates nothing (up to
// the engine's budget), recorder off.
func TestZeroAllocTwoWriteTx(t *testing.T) {
	for _, kind := range EngineKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			e := NewEngine(kind)
			x := NewTVar[int](0)
			y := NewTVar[int](0)
			fn := func(tx *Tx) error {
				Set(tx, x, (Get(tx, x)+1)%256)
				Set(tx, y, (Get(tx, y)+1)%256)
				return nil
			}
			if got := measureAllocs(t, e, fn); got > allocBudget(kind) {
				t.Errorf("%s: 2-write transaction allocates %.2f allocs/op in steady state, budget %.1f",
					kind, got, allocBudget(kind))
			}
		})
	}
}

// TestZeroAllocReadOnlyTx: a warmed read-only transaction allocates
// nothing.
func TestZeroAllocReadOnlyTx(t *testing.T) {
	for _, kind := range EngineKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			e := NewEngine(kind)
			x := NewTVar[int](1)
			y := NewTVar[int](2)
			var sink int
			fn := func(tx *Tx) error {
				sink = Get(tx, x) + Get(tx, y)
				return nil
			}
			if got := measureAllocs(t, e, fn); got > allocBudget(kind) {
				t.Errorf("%s: read-only transaction allocates %.2f allocs/op in steady state, budget %.1f",
					kind, got, allocBudget(kind))
			}
			_ = sink
		})
	}
}

// TestZeroAllocPointerValues: pointer-shaped values box for free, so the
// whole write path — including publish — stays allocation-free for them
// regardless of magnitude.
func TestZeroAllocPointerValues(t *testing.T) {
	vals := [2]*int{new(int), new(int)}
	for _, kind := range EngineKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			e := NewEngine(kind)
			x := NewTVar[*int](vals[0])
			i := 0
			fn := func(tx *Tx) error {
				_ = Get(tx, x)
				i++
				Set(tx, x, vals[i%2])
				return nil
			}
			if got := measureAllocs(t, e, fn); got > allocBudget(kind) {
				t.Errorf("%s: pointer-valued transaction allocates %.2f allocs/op in steady state, budget %.1f",
					kind, got, allocBudget(kind))
			}
		})
	}
}

// TestZeroAllocValueKindString: a warmed transaction that reads and
// writes a string allocates nothing — the words carry the header, the
// pointer slot carries the data pointer, and no box is built. Before the
// raw-word representation this was ≥1 alloc per Set on every engine.
func TestZeroAllocValueKindString(t *testing.T) {
	vals := [2]string{"zero-alloc-string-a", "zero-alloc-string-b"}
	for _, kind := range EngineKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			e := NewEngine(kind)
			x := NewTVar[string](vals[0])
			i := 0
			var sink int
			fn := func(tx *Tx) error {
				sink = len(Get(tx, x))
				i++
				Set(tx, x, vals[i%2])
				return nil
			}
			if got := measureAllocs(t, e, fn); got > allocBudget(kind) {
				t.Errorf("%s: string transaction allocates %.2f allocs/op in steady state, budget %.1f",
					kind, got, allocBudget(kind))
			}
			_ = sink
		})
	}
}

// TestZeroAllocValueKindFloat64: floats ride the data word; no boxing.
func TestZeroAllocValueKindFloat64(t *testing.T) {
	for _, kind := range EngineKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			e := NewEngine(kind)
			x := NewTVar[float64](0)
			fn := func(tx *Tx) error {
				v := Get(tx, x)
				if v > 1e9 {
					v = 0
				}
				Set(tx, x, v+1.5)
				return nil
			}
			if got := measureAllocs(t, e, fn); got > allocBudget(kind) {
				t.Errorf("%s: float64 transaction allocates %.2f allocs/op in steady state, budget %.1f",
					kind, got, allocBudget(kind))
			}
		})
	}
}

// TestZeroAllocValueKindPair: a two-word pointer-free struct rides both
// data words; no boxing.
func TestZeroAllocValueKindPair(t *testing.T) {
	type pair struct{ A, B uint64 }
	for _, kind := range EngineKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			e := NewEngine(kind)
			x := NewTVar[pair](pair{})
			fn := func(tx *Tx) error {
				v := Get(tx, x)
				Set(tx, x, pair{A: v.A + 1, B: v.B + 2})
				return nil
			}
			if got := measureAllocs(t, e, fn); got > allocBudget(kind) {
				t.Errorf("%s: two-word struct transaction allocates %.2f allocs/op in steady state, budget %.1f",
					kind, got, allocBudget(kind))
			}
		})
	}
}

// TestZeroAllocValueKindPtrScalar: mixed pointer+scalar structs (both
// field orders) ride the three vword words — pointer in the GC slot,
// scalars in a data word — so Set/Get of e.g. {*T; int} allocates
// nothing. Before the mixed kinds these types took the boxed fallback
// at one allocation per Set.
func TestZeroAllocValueKindPtrScalar(t *testing.T) {
	type ptrInt struct {
		P *int
		N int64
	}
	type intPtr struct {
		N int64
		P *int
	}
	vals := [2]*int{new(int), new(int)}
	for _, kind := range EngineKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			e := NewEngine(kind)
			x := NewTVar[ptrInt](ptrInt{P: vals[0]})
			y := NewTVar[intPtr](intPtr{P: vals[0]})
			i := 0
			fn := func(tx *Tx) error {
				vx := Get(tx, x)
				vy := Get(tx, y)
				i++
				Set(tx, x, ptrInt{P: vals[i%2], N: vx.N + 1})
				Set(tx, y, intPtr{N: vy.N + 1, P: vals[i%2]})
				return nil
			}
			if got := measureAllocs(t, e, fn); got > allocBudget(kind) {
				t.Errorf("%s: mixed pointer+scalar transaction allocates %.2f allocs/op in steady state, budget %.1f",
					kind, got, allocBudget(kind))
			}
		})
	}
}

// TestZeroAllocOrElse: the OrElse bracket — mark, abandoned first
// alternative, rollback, fallback — allocates nothing in steady state.
// The mark is a by-value txMark (no interface boxing) and its write-set
// prefix copy lands in the attempt's pooled markBuf, so OrElse is no
// longer the one operation that always allocated.
func TestZeroAllocOrElse(t *testing.T) {
	for _, kind := range EngineKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			e := NewEngine(kind)
			x := NewTVar[int](0)
			y := NewTVar[int](0)
			fn := func(tx *Tx) error {
				Set(tx, x, (Get(tx, x)+1)%256) // pre-mark write: a non-empty mark copy
				return OrElse(tx,
					func(tx *Tx) error {
						Set(tx, x, 7) // overwritten pre-mark entry, rolled back
						Retry(tx)
						return nil
					},
					func(tx *Tx) error {
						Set(tx, y, (Get(tx, y)+1)%256)
						return nil
					})
			}
			if got := measureAllocs(t, e, fn); got > allocBudget(kind) {
				t.Errorf("%s: OrElse transaction allocates %.2f allocs/op in steady state, budget %.1f",
					kind, got, allocBudget(kind))
			}
		})
	}
}

// TestZeroAllocConflictRetry: the retry loop itself is allocation-free —
// a transaction that conflicts once and then commits reuses the same
// pooled state for the retry. Driven on tl2, where a conflict is easy to
// inject deterministically from inside the transaction function.
func TestZeroAllocConflictRetry(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector randomizes sync.Pool reuse; alloc counts are gated in the non-race CI step")
	}
	e := NewEngine(EngineTL2)
	x := NewTVar[int](0)
	// Warm both the normal path and the conflicted path.
	conflictOnce := false
	fn := func(tx *Tx) error {
		v := Get(tx, x)
		if !conflictOnce {
			conflictOnce = true
			// A committed write between this attempt's read and commit
			// dooms validation, forcing one internal retry.
			if err := e.Atomically(func(tx2 *Tx) error {
				Set(tx2, x, (Get(tx2, x)+1)%256)
				return nil
			}); err != nil {
				return err
			}
		}
		Set(tx, x, (v+1)%256)
		return nil
	}
	for i := 0; i < allocWarmup; i++ {
		conflictOnce = false
		if err := e.Atomically(fn); err != nil {
			t.Fatal(err)
		}
	}
	st0 := e.Stats()
	got := testing.AllocsPerRun(200, func() {
		conflictOnce = false
		if err := e.Atomically(fn); err != nil {
			t.Fatal(err)
		}
	})
	st1 := e.Stats()
	if st1.Retries == st0.Retries {
		t.Fatalf("no retries were induced; the conflict-path measurement is vacuous")
	}
	if got > 0 {
		t.Errorf("conflict-retry loop allocates %.2f allocs/op in steady state, want 0", got)
	}
}
