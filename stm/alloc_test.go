package stm

import (
	"testing"
)

// The allocation regression gate: the package doc's zero-steady-state-
// allocation contract, pinned per engine with testing.AllocsPerRun so it
// cannot silently rot. Each case warms the pools first (the first
// attempts allocate their state, slices and pool internals), then
// measures a steady-state transaction.
//
// Written values stay in [0,255] so Go's static small-integer boxing
// applies: the gate isolates the machinery (pool, read/write/lock/undo
// sets, commit, counters) from the orthogonal cost of boxing large
// values, which is the one allocation the contract exempts. A pointer-
// valued variant pins the same property for pointer-shaped values, whose
// boxing is always free.

// allocBudget is the steady-state allocs/op each engine is allowed.
// glock/twopl/tl2/tl2s owe exactly zero; adaptive gets a small fixed
// budget for the rare amortized paths its delegation layer may hit
// (window close, pool rebalancing across the wrapper and delegate
// pools).
func allocBudget(kind EngineKind) float64 {
	if kind == EngineAdaptive {
		return 0.5
	}
	return 0
}

const allocWarmup = 200

func measureAllocs(t *testing.T, e *Engine, fn func(tx *Tx) error) float64 {
	t.Helper()
	if raceEnabled {
		t.Skip("race detector randomizes sync.Pool reuse; alloc counts are gated in the non-race CI step")
	}
	for i := 0; i < allocWarmup; i++ {
		if err := e.Atomically(fn); err != nil {
			t.Fatal(err)
		}
	}
	return testing.AllocsPerRun(200, func() {
		if err := e.Atomically(fn); err != nil {
			t.Fatal(err)
		}
	})
}

// TestZeroAllocTwoWriteTx: a warmed read-modify-write transaction over
// two variables — two Gets, two Sets, commit — allocates nothing (up to
// the engine's budget), recorder off.
func TestZeroAllocTwoWriteTx(t *testing.T) {
	for _, kind := range EngineKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			e := NewEngine(kind)
			x := NewTVar[int](0)
			y := NewTVar[int](0)
			fn := func(tx *Tx) error {
				Set(tx, x, (Get(tx, x)+1)%256)
				Set(tx, y, (Get(tx, y)+1)%256)
				return nil
			}
			if got := measureAllocs(t, e, fn); got > allocBudget(kind) {
				t.Errorf("%s: 2-write transaction allocates %.2f allocs/op in steady state, budget %.1f",
					kind, got, allocBudget(kind))
			}
		})
	}
}

// TestZeroAllocReadOnlyTx: a warmed read-only transaction allocates
// nothing.
func TestZeroAllocReadOnlyTx(t *testing.T) {
	for _, kind := range EngineKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			e := NewEngine(kind)
			x := NewTVar[int](1)
			y := NewTVar[int](2)
			var sink int
			fn := func(tx *Tx) error {
				sink = Get(tx, x) + Get(tx, y)
				return nil
			}
			if got := measureAllocs(t, e, fn); got > allocBudget(kind) {
				t.Errorf("%s: read-only transaction allocates %.2f allocs/op in steady state, budget %.1f",
					kind, got, allocBudget(kind))
			}
			_ = sink
		})
	}
}

// TestZeroAllocPointerValues: pointer-shaped values box for free, so the
// whole write path — including publish — stays allocation-free for them
// regardless of magnitude.
func TestZeroAllocPointerValues(t *testing.T) {
	vals := [2]*int{new(int), new(int)}
	for _, kind := range EngineKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			e := NewEngine(kind)
			x := NewTVar[*int](vals[0])
			i := 0
			fn := func(tx *Tx) error {
				_ = Get(tx, x)
				i++
				Set(tx, x, vals[i%2])
				return nil
			}
			if got := measureAllocs(t, e, fn); got > allocBudget(kind) {
				t.Errorf("%s: pointer-valued transaction allocates %.2f allocs/op in steady state, budget %.1f",
					kind, got, allocBudget(kind))
			}
		})
	}
}

// TestZeroAllocConflictRetry: the retry loop itself is allocation-free —
// a transaction that conflicts once and then commits reuses the same
// pooled state for the retry. Driven on tl2, where a conflict is easy to
// inject deterministically from inside the transaction function.
func TestZeroAllocConflictRetry(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector randomizes sync.Pool reuse; alloc counts are gated in the non-race CI step")
	}
	e := NewEngine(EngineTL2)
	x := NewTVar[int](0)
	// Warm both the normal path and the conflicted path.
	conflictOnce := false
	fn := func(tx *Tx) error {
		v := Get(tx, x)
		if !conflictOnce {
			conflictOnce = true
			// A committed write between this attempt's read and commit
			// dooms validation, forcing one internal retry.
			if err := e.Atomically(func(tx2 *Tx) error {
				Set(tx2, x, (Get(tx2, x)+1)%256)
				return nil
			}); err != nil {
				return err
			}
		}
		Set(tx, x, (v+1)%256)
		return nil
	}
	for i := 0; i < allocWarmup; i++ {
		conflictOnce = false
		if err := e.Atomically(fn); err != nil {
			t.Fatal(err)
		}
	}
	st0 := e.Stats()
	got := testing.AllocsPerRun(200, func() {
		conflictOnce = false
		if err := e.Atomically(fn); err != nil {
			t.Fatal(err)
		}
	})
	st1 := e.Stats()
	if st1.Retries == st0.Retries {
		t.Fatalf("no retries were induced; the conflict-path measurement is vacuous")
	}
	if got > 0 {
		t.Errorf("conflict-retry loop allocates %.2f allocs/op in steady state, want 0", got)
	}
}
