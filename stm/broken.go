package stm

import "sync"

// This file holds the deliberately broken engines behind the conformance
// harness's self-tests: unregistered algorithms whose specific bugs the
// recorded-history checkers must convict, proving the harness catches
// real violations rather than vacuously passing. Neither may ever be
// used outside tests.

// NewBrokenEngineForTest returns an engine running a deliberately
// inconsistent algorithm, used by the conformance harness's self-test to
// prove the recorded-history checkers actually catch violations.
//
// The algorithm is the global-lock engine with a stale read cache bolted
// on: the first load of each variable caches the value it observed, and
// every later load — in any transaction, forever — returns the cached
// value, ignoring committed writes. A single process that reads x, then
// commits a write to x, then reads x again observes its own write lost,
// which violates every condition down to PRAM; the mutex keeps the
// breakage deterministic and data-race-free so the harness can assert on
// it under -race.
func NewBrokenEngineForTest(opts ...Option) *Engine {
	return newEngineShell(-1, &brokenEngine{stale: make(map[*tvar]vword)}, opts...)
}

// brokenEngine is glockEngine plus the poisoned read cache.
type brokenEngine struct {
	mu    sync.Mutex
	stale map[*tvar]vword
}

type brokenTx struct {
	eng  *brokenEngine
	undo undoLog
}

func (e *brokenEngine) begin(attempt int) txState {
	e.mu.Lock()
	return &brokenTx{eng: e}
}

// done: the broken engine doesn't pool — its job is determinism, not
// speed.
func (e *brokenEngine) done(st txState) { st.reset() }

func (tx *brokenTx) reset() { tx.undo.reset() }

// load returns the first value this engine ever saw for tv — stale the
// moment anyone commits a newer one.
func (tx *brokenTx) load(tv *tvar) vword {
	if v, ok := tx.eng.stale[tv]; ok {
		return v
	}
	v := tv.read()
	tx.eng.stale[tv] = v
	return v
}

func (tx *brokenTx) store(tv *tvar, v vword) {
	tx.undo.push(tv)
	tv.publish(v)
}

func (tx *brokenTx) commit() bool {
	tx.eng.mu.Unlock()
	return true
}

func (tx *brokenTx) abortCleanup() {
	tx.undo.rollback()
	tx.eng.mu.Unlock()
}

func (tx *brokenTx) conflictCleanup() {
	tx.undo.rollback()
	tx.eng.mu.Unlock()
}

func (tx *brokenTx) wrote() bool { return len(tx.undo) > 0 }

func (tx *brokenTx) mark() txMark { return txMark{n: len(tx.undo)} }

func (tx *brokenTx) rollbackTo(m txMark) { tx.undo.rollbackTo(m.n) }

// NewLeakyPoolEngineForTest returns an engine with the classic pooling
// bug built in: it writes in place with an undo log and pools its
// attempt state like every production engine — but its reset "forgets"
// to truncate the undo log. The next pooled attempt that rolls back
// (user abort) then re-applies its predecessor's undo entries too,
// resurrecting values that committed transactions had overwritten; a
// later read observes a history no serialization order can justify. The
// conformance harness must convict it (see internal/conformance's
// pooling tests), which is the self-test that the pool-hygiene sweep
// would catch the same truncation bug in a production engine's reset.
func NewLeakyPoolEngineForTest(opts ...Option) *Engine {
	return newEngineShell(-1, &leakyEngine{}, opts...)
}

// leakyEngine serializes on one mutex (so the leak, not concurrency, is
// the only bug) and recycles leakyTx state through an explicit LIFO
// free list rather than a sync.Pool: the fixture's value is
// determinism, and the race detector deliberately drops sync.Pool puts,
// which would make the planted leak probabilistic under -race.
type leakyEngine struct {
	mu     sync.Mutex
	poolMu sync.Mutex
	free   []*leakyTx
}

type leakyTx struct {
	eng  *leakyEngine
	undo undoLog
}

func (e *leakyEngine) begin(attempt int) txState {
	e.poolMu.Lock()
	var tx *leakyTx
	if n := len(e.free); n > 0 {
		tx, e.free = e.free[n-1], e.free[:n-1]
	} else {
		tx = &leakyTx{eng: e}
	}
	e.poolMu.Unlock()
	e.mu.Lock()
	return tx
}

func (e *leakyEngine) done(st txState) {
	st.reset()
	e.poolMu.Lock()
	e.free = append(e.free, st.(*leakyTx))
	e.poolMu.Unlock()
}

// reset is the planted bug: it keeps the undo log instead of truncating
// it, so the entries survive into the state's next attempt.
func (tx *leakyTx) reset() {}

func (tx *leakyTx) load(tv *tvar) vword {
	return tv.read()
}

func (tx *leakyTx) store(tv *tvar, v vword) {
	tx.undo.push(tv)
	tv.publish(v)
}

func (tx *leakyTx) commit() bool {
	// Correct engines truncate here or in reset; this one leaves the
	// committed writes' undo entries in the pooled log.
	tx.eng.mu.Unlock()
	return true
}

// abortCleanup rolls back the whole log — including entries leaked from
// the state's previous attempts, which resurrects their old values.
func (tx *leakyTx) abortCleanup() {
	tx.undo.rollback()
	tx.eng.mu.Unlock()
}

func (tx *leakyTx) conflictCleanup() {
	tx.undo.rollback()
	tx.eng.mu.Unlock()
}

func (tx *leakyTx) wrote() bool { return len(tx.undo) > 0 }

func (tx *leakyTx) mark() txMark { return txMark{n: len(tx.undo)} }

func (tx *leakyTx) rollbackTo(m txMark) { tx.undo.rollbackTo(m.n) }

// NewWordCorruptingEngineForTest returns an engine with a planted
// raw-word bug: every publish of a single-word (kindWord) value zeroes
// the word's high 32 bits, as if the value had been squeezed through a
// 32-bit register on its way to the tvar. A committed write of a value
// that needs the high bits is then observed by later reads as a value no
// transaction ever wrote, which no serialization can justify — the
// conformance harness must convict it (internal/conformance's word
// corruption test), proving the checkers would catch a real encode/
// decode or publish bug in the word pipeline the same way.
func NewWordCorruptingEngineForTest(opts ...Option) *Engine {
	return newEngineShell(-1, &corruptEngine{}, opts...)
}

// corruptEngine is the glock algorithm with the planted word truncation;
// the mutex keeps the corruption deterministic and data-race-free.
type corruptEngine struct {
	mu sync.Mutex
}

type corruptTx struct {
	eng  *corruptEngine
	undo undoLog
}

func (e *corruptEngine) begin(attempt int) txState {
	e.mu.Lock()
	return &corruptTx{eng: e}
}

func (e *corruptEngine) done(st txState) { st.reset() }

func (tx *corruptTx) reset() { tx.undo.reset() }

func (tx *corruptTx) load(tv *tvar) vword {
	return tv.read()
}

// store is the planted bug: kindWord payloads lose their high 32 bits.
func (tx *corruptTx) store(tv *tvar, v vword) {
	tx.undo.push(tv)
	if tv.kind == kindWord {
		v.w0 &= 0xFFFFFFFF
	}
	tv.publish(v)
}

func (tx *corruptTx) commit() bool {
	tx.eng.mu.Unlock()
	return true
}

func (tx *corruptTx) abortCleanup() {
	tx.undo.rollback()
	tx.eng.mu.Unlock()
}

func (tx *corruptTx) conflictCleanup() {
	tx.undo.rollback()
	tx.eng.mu.Unlock()
}

func (tx *corruptTx) wrote() bool { return len(tx.undo) > 0 }

func (tx *corruptTx) mark() txMark { return txMark{n: len(tx.undo)} }

func (tx *corruptTx) rollbackTo(m txMark) { tx.undo.rollbackTo(m.n) }
