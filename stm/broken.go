package stm

import "sync"

// NewBrokenEngineForTest returns an engine running a deliberately
// inconsistent algorithm, used by the conformance harness's self-test to
// prove the recorded-history checkers actually catch violations. It is
// not registered in the engine table and must never be used outside
// tests.
//
// The algorithm is the global-lock engine with a stale read cache bolted
// on: the first load of each variable caches the value it observed, and
// every later load — in any transaction, forever — returns the cached
// value, ignoring committed writes. A single process that reads x, then
// commits a write to x, then reads x again observes its own write lost,
// which violates every condition down to PRAM; the mutex keeps the
// breakage deterministic and data-race-free so the harness can assert on
// it under -race.
func NewBrokenEngineForTest(opts ...Option) *Engine {
	e := &Engine{kind: -1, impl: &brokenEngine{stale: make(map[*tvar]any)}}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// brokenEngine is glockEngine plus the poisoned read cache.
type brokenEngine struct {
	mu    sync.Mutex
	stale map[*tvar]any
}

type brokenTx struct {
	eng  *brokenEngine
	undo undoLog
}

func (e *brokenEngine) begin(attempt int) txState {
	e.mu.Lock()
	return &brokenTx{eng: e}
}

// load returns the first value this engine ever saw for tv — stale the
// moment anyone commits a newer one.
func (tx *brokenTx) load(tv *tvar) any {
	if v, ok := tx.eng.stale[tv]; ok {
		return v
	}
	v := *tv.val.Load()
	tx.eng.stale[tv] = v
	return v
}

func (tx *brokenTx) store(tv *tvar, v any) {
	tx.undo.push(tv)
	nv := v
	tv.val.Store(&nv)
}

func (tx *brokenTx) commit() bool {
	tx.eng.mu.Unlock()
	return true
}

func (tx *brokenTx) abortCleanup() {
	tx.undo.rollback()
	tx.eng.mu.Unlock()
}

func (tx *brokenTx) conflictCleanup() {
	tx.undo.rollback()
	tx.eng.mu.Unlock()
}

func (tx *brokenTx) wrote() bool { return len(tx.undo) > 0 }

func (tx *brokenTx) mark() txMark { return len(tx.undo) }

func (tx *brokenTx) rollbackTo(m txMark) { tx.undo.rollbackTo(m.(int)) }
