package stm

import (
	"sync"
	"sync/atomic"
)

// retrySignal unwinds an attempt that called Retry; the engine blocks
// until some transaction commits writes, then re-runs the function.
type retrySignal struct{}

// notifier wakes blocked Retry-ers on every writing commit. The
// attempt-path operations are lock-free: snapshot is one atomic load,
// and bump takes the mutex only when a waiter is registered, so writing
// commits with nobody blocked pay a single fetch-and-add.
type notifier struct {
	seq     atomic.Uint64
	waiters atomic.Int32
	mu      sync.Mutex
	cond    *sync.Cond
}

func (n *notifier) init() {
	n.cond = sync.NewCond(&n.mu)
}

// snapshot returns the current commit sequence number.
func (n *notifier) snapshot() uint64 {
	return n.seq.Load()
}

// bump signals that shared state changed. The seq bump (atomic RMW)
// precedes the waiter check; waitChange registers (RMW) before reading
// seq — so either the waiter sees the new seq and never sleeps, or this
// load sees the waiter and broadcasts under the mutex it sleeps on.
func (n *notifier) bump() {
	n.seq.Add(1)
	if n.waiters.Load() != 0 {
		n.mu.Lock()
		if n.cond != nil {
			n.cond.Broadcast()
		}
		n.mu.Unlock()
	}
}

// waitChange blocks until the sequence number moves past since.
func (n *notifier) waitChange(since uint64) {
	n.mu.Lock()
	if n.cond == nil {
		n.init()
	}
	n.waiters.Add(1)
	for n.seq.Load() == since {
		n.cond.Wait()
	}
	n.waiters.Add(-1)
	n.mu.Unlock()
}

// Retry abandons the current transaction attempt and blocks the calling
// Atomically until another transaction commits a write, then re-runs the
// transaction function from scratch — the STM idiom for waiting on a
// condition:
//
//	eng.Atomically(func(tx *stm.Tx) error {
//	    n := stm.Get(tx, queueLen)
//	    if n == 0 {
//	        stm.Retry(tx) // sleep until something is enqueued
//	    }
//	    ...
//	})
//
// Lock-based engines release everything they hold before sleeping, so
// writers can make the condition true.
func Retry(tx *Tx) {
	_ = tx // the transaction's state is discarded by the unwind
	panic(retrySignal{})
}
