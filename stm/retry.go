package stm

import "sync"

// retrySignal unwinds an attempt that called Retry; the engine blocks
// until some transaction commits writes, then re-runs the function.
type retrySignal struct{}

// notifier wakes blocked Retry-ers on every writing commit.
type notifier struct {
	mu   sync.Mutex
	cond *sync.Cond
	seq  uint64
}

func (n *notifier) init() {
	n.cond = sync.NewCond(&n.mu)
}

// snapshot returns the current commit sequence number.
func (n *notifier) snapshot() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cond == nil {
		n.init()
	}
	return n.seq
}

// bump signals that shared state changed.
func (n *notifier) bump() {
	n.mu.Lock()
	if n.cond == nil {
		n.init()
	}
	n.seq++
	n.cond.Broadcast()
	n.mu.Unlock()
}

// waitChange blocks until the sequence number moves past since.
func (n *notifier) waitChange(since uint64) {
	n.mu.Lock()
	if n.cond == nil {
		n.init()
	}
	for n.seq == since {
		n.cond.Wait()
	}
	n.mu.Unlock()
}

// Retry abandons the current transaction attempt and blocks the calling
// Atomically until another transaction commits a write, then re-runs the
// transaction function from scratch — the STM idiom for waiting on a
// condition:
//
//	eng.Atomically(func(tx *stm.Tx) error {
//	    n := stm.Get(tx, queueLen)
//	    if n == 0 {
//	        stm.Retry(tx) // sleep until something is enqueued
//	    }
//	    ...
//	})
//
// Lock-based engines release everything they hold before sleeping, so
// writers can make the condition true.
func Retry(tx *Tx) {
	_ = tx // the transaction's state is discarded by the unwind
	panic(retrySignal{})
}
