package stm

import "errors"

// errRetryInternal marks an alternative that called Retry, for OrElse's
// internal bookkeeping.
var errRetryInternal = errors.New("stm: internal retry sentinel")

// OrElse composes two transactional alternatives: it runs f, and if f
// calls Retry, rolls f's writes back and runs g instead. If g also
// retries, the whole transaction blocks (as with a plain Retry) and
// re-runs from scratch. Errors from either alternative abort the
// transaction as usual. OrElse nests freely:
//
//	err := eng.Atomically(func(tx *stm.Tx) error {
//	    return stm.OrElse(tx,
//	        func(tx *stm.Tx) error { return takeFrom(tx, fastQueue) },
//	        func(tx *stm.Tx) error { return takeFrom(tx, slowQueue) },
//	    )
//	})
//
// The mark/rollback bracket is engine-specific (buffered engines restore
// their write set, in-place engines pop their undo log); see
// txState.mark in engines.go.
func OrElse(tx *Tx, f, g func(*Tx) error) error {
	m := tx.st.mark()
	opsMark := 0
	if tx.rec != nil {
		opsMark = len(tx.rec.Ops)
	}
	err := runAlternative(tx, f)
	if errors.Is(err, errRetryInternal) {
		tx.st.rollbackTo(m)
		if tx.rec != nil {
			// The abandoned alternative's ops leave the record with its
			// writes: they were rolled back and published nothing.
			// Dropping its reads too is sound — omitting observations
			// only relaxes what the checkers must justify.
			tx.rec.Ops = tx.rec.Ops[:opsMark]
		}
		return g(tx)
	}
	return err
}

// runAlternative executes one alternative, converting its Retry into the
// internal sentinel while letting conflicts and real panics propagate.
func runAlternative(tx *Tx, f func(*Tx) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(retrySignal); ok {
				err = errRetryInternal
				return
			}
			panic(r)
		}
	}()
	return f(tx)
}
