package stm

import "errors"

// errRetryInternal marks an alternative that called Retry, for OrElse's
// internal bookkeeping.
var errRetryInternal = errors.New("stm: internal retry sentinel")

// txMark snapshots a transaction's write state so an abandoned OrElse
// alternative can be rolled back without restarting the whole
// transaction.
type txMark struct {
	worderLen int
	writes    map[*tvar]any
	undoLen   int
}

// mark captures the current write state.
func (tx *Tx) mark() txMark {
	m := txMark{worderLen: len(tx.worder), undoLen: len(tx.undo)}
	if tx.writes != nil {
		m.writes = make(map[*tvar]any, len(tx.writes))
		for tv, v := range tx.writes {
			m.writes[tv] = v
		}
	}
	return m
}

// rollbackTo undoes all writes performed after the mark. Locks acquired
// since the mark are kept (conservative and deadlock-free: they are
// released when the transaction finishes either way), as are read-set
// entries (extra validation can only make commit more conservative).
func (tx *Tx) rollbackTo(m txMark) {
	if tx.writes != nil {
		tx.worder = tx.worder[:m.worderLen]
		for tv := range tx.writes {
			if _, kept := m.writes[tv]; !kept {
				delete(tx.writes, tv)
			}
		}
		for tv, v := range m.writes {
			tx.writes[tv] = v
		}
	}
	for i := len(tx.undo) - 1; i >= m.undoLen; i-- {
		tx.undo[i].tv.val.Store(tx.undo[i].prev)
	}
	tx.undo = tx.undo[:m.undoLen]
}

// OrElse composes two transactional alternatives: it runs f, and if f
// calls Retry, rolls f's writes back and runs g instead. If g also
// retries, the whole transaction blocks (as with a plain Retry) and
// re-runs from scratch. Errors from either alternative abort the
// transaction as usual. OrElse nests freely:
//
//	err := eng.Atomically(func(tx *stm.Tx) error {
//	    return stm.OrElse(tx,
//	        func(tx *stm.Tx) error { return takeFrom(tx, fastQueue) },
//	        func(tx *stm.Tx) error { return takeFrom(tx, slowQueue) },
//	    )
//	})
func OrElse(tx *Tx, f, g func(*Tx) error) error {
	m := tx.mark()
	err := runAlternative(tx, f)
	if errors.Is(err, errRetryInternal) {
		tx.rollbackTo(m)
		return g(tx)
	}
	return err
}

// runAlternative executes one alternative, converting its Retry into the
// internal sentinel while letting conflicts and real panics propagate.
func runAlternative(tx *Tx, f func(*Tx) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(retrySignal); ok {
				err = errRetryInternal
				return
			}
			panic(r)
		}
	}()
	return f(tx)
}
