package stm

func init() {
	registerEngine(EngineTL2Striped, "tl2s",
		"TL2 with a cache-line-padded striped version clock and lazy snapshot extension (DAP-friendly on disjoint workloads)",
		func() engine {
			return &tl2Engine{clock: newStripedClock(), extend: true, spill: spillThreshold()}
		})
}

// EngineTL2Striped is the tl2Engine of tl2.go running on the
// stripedClock of clock.go with lazy snapshot extension enabled.
//
// Classic TL2 pays for consistency with one fetch-and-add on a global
// counter per writing commit: under a fully disjoint workload — the "P
// corner" the PCL theorem is about — transactions that share no data
// still serialize on that cache line, which is precisely why TL2 is not
// disjoint-access-parallel. The striped variant spreads the clock over
// per-shard padded counters (commit bumps one hint-selected shard with a
// CAS to max(shard, rv)+1; a snapshot is the max over shards), so
// disjoint committers touch disjoint cache lines and the clock stops
// being a rendezvous point.
//
// Commit timestamps still respect the full TL2 clock contract — a tick
// re-scans the shards so its result exceeds every snapshot completed
// before it began (see versionClock invariant 3 in clock.go); only the
// *write* is striped. The trade is that reader snapshots go stale faster
// as shards advance independently; the engine compensates with lazy
// snapshot extension in the GV5 family's spirit: a read that observes a
// too-new version re-snapshots the clock and revalidates its read set
// instead of restarting. Note this does not make the engine
// disjoint-access-parallel in the strict sense the theorem uses — the
// snapshot still scans all shards — it only removes the write-side hot
// spot; the theorem survives, measurably.
