//go:build !race

package stm

// raceEnabled: see race_test.go.
const raceEnabled = false
