package stm

import (
	"sync"
	"testing"
	"time"
)

// TestRetryBlocksUntilCondition: a consumer Retry-waits on an empty slot
// until the producer fills it, for every engine.
func TestRetryBlocksUntilCondition(t *testing.T) {
	for _, kind := range EngineKinds() {
		e := NewEngine(kind)
		slot := NewTVar[int](0)
		got := make(chan int, 1)

		go func() {
			var v int
			_ = e.Atomically(func(tx *Tx) error {
				v = Get(tx, slot)
				if v == 0 {
					Retry(tx)
				}
				Set(tx, slot, 0) // consume
				return nil
			})
			got <- v
		}()

		// Give the consumer a chance to park, then produce.
		time.Sleep(5 * time.Millisecond)
		if err := e.Atomically(func(tx *Tx) error {
			Set(tx, slot, 42)
			return nil
		}); err != nil {
			t.Fatalf("%v: produce: %v", kind, err)
		}

		select {
		case v := <-got:
			if v != 42 {
				t.Errorf("%v: consumed %d, want 42", kind, v)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%v: consumer never woke up", kind)
		}
		if v := slot.Peek(); v != 0 {
			t.Errorf("%v: slot not consumed: %d", kind, v)
		}
	}
}

// TestRetryProducerConsumerPipeline: a bounded queue built from TVars,
// with blocking put (queue full) and take (queue empty), under real
// concurrency on every engine.
func TestRetryProducerConsumerPipeline(t *testing.T) {
	const items = 200
	const capacity = 4
	for _, kind := range EngineKinds() {
		e := NewEngine(kind)
		buf := NewTVar[[]int](nil)

		put := func(v int) {
			_ = e.Atomically(func(tx *Tx) error {
				q := Get(tx, buf)
				if len(q) >= capacity {
					Retry(tx)
				}
				Set(tx, buf, append(append([]int(nil), q...), v))
				return nil
			})
		}
		take := func() int {
			var v int
			_ = e.Atomically(func(tx *Tx) error {
				q := Get(tx, buf)
				if len(q) == 0 {
					Retry(tx)
				}
				v = q[0]
				Set(tx, buf, append([]int(nil), q[1:]...))
				return nil
			})
			return v
		}

		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= items; i++ {
				put(i)
			}
		}()

		sum := 0
		for i := 0; i < items; i++ {
			sum += take()
		}
		wg.Wait()
		want := items * (items + 1) / 2
		if sum != want {
			t.Errorf("%v: sum = %d, want %d (lost or duplicated items)", kind, sum, want)
		}
		if q := buf.Peek(); len(q) != 0 {
			t.Errorf("%v: queue not drained: %v", kind, q)
		}
	}
}

// TestRetryDoesNotMissWakeups: many waiters, one writer; everyone must
// eventually proceed.
func TestRetryDoesNotMissWakeups(t *testing.T) {
	e := NewEngine(EngineTL2)
	gate := NewTVar[int](0)
	const waiters = 16
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = e.Atomically(func(tx *Tx) error {
				if Get(tx, gate) == 0 {
					Retry(tx)
				}
				return nil
			})
		}()
	}
	time.Sleep(5 * time.Millisecond)
	_ = e.Atomically(func(tx *Tx) error {
		Set(tx, gate, 1)
		return nil
	})
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiters never woke up")
	}
}
