package stm

import (
	"runtime"
	"sync"
	"testing"
)

func TestOrecTableSizing(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, defaultOrecShards},
		{1, 1},
		{3, 4},
		{64, 64},
		{maxOrecShards * 2, maxOrecShards},
	}
	for _, c := range cases {
		if got := newOrecTable(c.in).size(); got != c.want {
			t.Errorf("newOrecTable(%d).size() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestOrecHashStableAndSpread(t *testing.T) {
	tab := newOrecTable(64)
	tv := newTVar(kindWord, vword{})
	if tab.of(tv) != tab.of(tv) {
		t.Fatal("orec hash is not stable for the same variable")
	}
	// Sequentially allocated variables must not pile onto one record.
	seen := map[*orec]bool{}
	for i := 0; i < 256; i++ {
		seen[tab.of(newTVar(kindWord, vword{}))] = true
	}
	if len(seen) < tab.size()/2 {
		t.Errorf("256 variables hit only %d of %d records", len(seen), tab.size())
	}
}

// TestOrecSingleShardSerializes is the aliasing correctness test: with a
// one-record table every variable shares the same lock, so disjoint
// transactions conflict spuriously — but they must still serialize, and
// no increment may be lost.
func TestOrecSingleShardSerializes(t *testing.T) {
	defer func(old int) { OrecShards = old }(OrecShards)
	OrecShards = 1
	e := NewEngine(EngineTwoPL)
	if got := e.impl.(*twoPLEngine).orecs.size(); got != 1 {
		t.Fatalf("orec table size = %d, want 1", got)
	}

	const workers = 4
	const ops = 500
	vars := make([]*TVar[int64], workers)
	for i := range vars {
		vars[i] = NewTVar[int64](0)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				_ = e.Atomically(func(tx *Tx) error {
					Set(tx, vars[w], Get(tx, vars[w])+1)
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	for w, tv := range vars {
		if got := tv.Peek(); got != ops {
			t.Errorf("vars[%d] = %d, want %d (update lost to orec aliasing)", w, got, ops)
		}
	}
}

// TestOrecAliasedVarsInOneTransaction: two variables covered by the same
// record are one acquisition, not a self-deadlock.
func TestOrecAliasedVarsInOneTransaction(t *testing.T) {
	defer func(old int) { OrecShards = old }(OrecShards)
	OrecShards = 1
	e := NewEngine(EngineTwoPL)
	a := NewTVar[int](1)
	b := NewTVar[int](2)
	err := e.Atomically(func(tx *Tx) error {
		Set(tx, a, Get(tx, a)+Get(tx, b))
		Set(tx, b, Get(tx, a))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Peek() != 3 || b.Peek() != 3 {
		t.Errorf("a=%d b=%d, want 3 3", a.Peek(), b.Peek())
	}
}

// TestOrecShardsKnobReachesTheEngine: the configurable shard count is
// read at construction and rounded up to a power of two.
func TestOrecShardsKnobReachesTheEngine(t *testing.T) {
	defer func(old int) { OrecShards = old }(OrecShards)
	OrecShards = 100
	e := NewEngine(EngineTwoPL)
	if got := e.impl.(*twoPLEngine).orecs.size(); got != 128 {
		t.Fatalf("orec table size = %d, want 128", got)
	}
}

// TestTwoPLLockFailStats: a failed try-lock shows up in Stats.LockFails.
func TestTwoPLLockFailStats(t *testing.T) {
	defer func(old int) { OrecShards = old }(OrecShards)
	OrecShards = 1
	e := NewEngine(EngineTwoPL)
	x := NewTVar[int](0)
	y := NewTVar[int](0)

	hold := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = e.Atomically(func(tx *Tx) error {
			Set(tx, x, 1)
			close(hold)
			<-release
			return nil
		})
	}()
	<-hold
	// The holder owns the only record; a contender must fail its
	// try-lock at least once before the holder releases.
	contended := make(chan struct{})
	go func() {
		defer close(contended)
		_ = e.Atomically(func(tx *Tx) error {
			Set(tx, y, 1)
			return nil
		})
	}()
	for e.Stats().LockFails == 0 {
		runtime.Gosched() // let the contender bounce off the held record
	}
	close(release)
	<-contended
	<-done
	if e.Stats().LockFails == 0 {
		t.Fatal("contended try-lock produced no LockFails")
	}
}
