//go:build race

package stm

// raceEnabled reports that this test binary runs under the race
// detector, which deliberately randomizes sync.Pool reuse (puts are
// dropped to shake out races) — so steady-state allocation counts are
// not meaningful and the zero-alloc gate skips. CI runs the gate in a
// dedicated non-race step.
const raceEnabled = true
