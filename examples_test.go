package pcltm

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestExamplesBuildAndRun smoke-tests every program under examples/: each
// must build and run to a clean exit, so the examples can't silently rot
// as the stm/ API moves. The directory listing is live — a new example
// joins the test by existing.
func TestExamplesBuildAndRun(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain not on PATH: %v", err)
	}
	dirs, err := filepath.Glob("examples/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no examples found")
	}
	bin := t.TempDir()
	for _, dir := range dirs {
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			continue
		}
		dir := dir
		t.Run(filepath.Base(dir), func(t *testing.T) {
			t.Parallel()
			exe := filepath.Join(bin, filepath.Base(dir))
			build := exec.Command("go", "build", "-o", exe, "./"+dir)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build failed: %v\n%s", err, out)
			}
			ctxDeadline := 60 * time.Second
			if d, ok := t.Deadline(); ok {
				if until := time.Until(d) - 5*time.Second; until < ctxDeadline {
					ctxDeadline = until
				}
			}
			run := exec.Command(exe)
			var out bytes.Buffer
			run.Stdout, run.Stderr = &out, &out
			if err := run.Start(); err != nil {
				t.Fatalf("start failed: %v", err)
			}
			done := make(chan error, 1)
			go func() { done <- run.Wait() }()
			select {
			case rerr := <-done:
				if rerr != nil {
					t.Fatalf("run failed: %v\n%s", rerr, out.Bytes())
				}
			case <-time.After(ctxDeadline):
				_ = run.Process.Kill()
				<-done
				t.Fatalf("example did not exit within %v", ctxDeadline)
			}
		})
	}
}
